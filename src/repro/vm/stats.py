"""Run accounting for the DBI engine.

The paper's measurements hinge on one decomposition (§2.2, Figure 5(b)):

* **VM overhead** — "the cost of dynamically generating application code":
  trace translation, dispatcher round-trips, link patching, code-cache
  flushes, and (with persistence) cache load/validation/write work.
* **Translated code performance** — time spent executing application code
  inside the code cache, including indirect-branch resolution, syscall and
  signal *emulation* (charged to translated-code time: the paper attributes
  File-Roller's emulation cost to "poor translated code performance"), and
  instrumentation analysis routines.

:class:`VMStats` keeps every component separately and maintains a running
total so translation events can be timestamped for the Figure 2(a)
timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Maximum entries in one polymorphic indirect-branch inline-cache chain
#: (repro.vm.compile bakes this into generated closures).  Four mirrors
#: Pin's short indirect-chain predictions: the rotating-3 corpus still
#: hits (steady state occupies three entries), while a megamorphic table
#: cycle stays bounded instead of growing a useless long chain.
IC_CHAIN_DEPTH = 4


@dataclass
class ICStats:
    """Host-side counters for the compiled tier's polymorphic
    indirect-branch inline caches (:mod:`repro.vm.compile`).

    Deliberately **not** part of :class:`VMStats`: the interpreted
    oracle has no inline caches, so any counter here would differ
    between the tiers and break the bit-identical ``VMStats`` contract
    (docs/performance.md).  Like the factory memo and the compiled-body
    sidecar, the ICs are host-level memoization of the indirect
    resolver — they may never influence anything simulated, so their
    accounting travels beside the run result
    (:attr:`repro.vm.engine.VMRunResult.ic_stats`), not inside it.
    """

    #: Chain hits: the dynamic target was found in the site's chain.
    hits: int = 0
    #: Chain misses: resolved through ``cache_lookup`` instead.
    misses: int = 0
    #: Misses whose resolution was resident and refilled the chain.
    fills: int = 0
    #: Hits at depth > 0, moved to the front of their chain.
    promotions: int = 0
    #: Non-empty chains discarded because ``cache.generation`` advanced
    #: (SMC eviction, module unload, cache flush).
    resets: int = 0
    #: Hits served by the megamorphic hash-table tier behind the chain
    #: (targets the bounded MRU chain cycled out; see
    #: :meth:`repro.vm.compile.TraceCompiler._emit_indirect_exit`).
    overflow_hits: int = 0
    #: Hits by chain position (index 0 = the predicted/MRU entry).
    depth_hits: List[int] = field(
        default_factory=lambda: [0] * IC_CHAIN_DEPTH
    )

    @property
    def lookups(self) -> int:
        """Indirect exits taken through compiled closures."""
        return self.hits + self.overflow_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of indirect exits served from a chain or the
        overflow table (no translation-map resolution needed)."""
        total = self.lookups
        return (self.hits + self.overflow_hits) / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (bench tables, session reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "promotions": self.promotions,
            "resets": self.resets,
            "overflow_hits": self.overflow_hits,
            "depth_hits": list(self.depth_hits),
            "hit_rate": self.hit_rate,
        }


@dataclass
class LinkStats:
    """Host-side counters for the compiled tier's cross-trace linking
    (the chain trampoline and superblock regions in
    :mod:`repro.vm.engine` / :mod:`repro.vm.compile`).

    Like :class:`ICStats`, deliberately **not** part of
    :class:`VMStats`: linked exits were already free in simulated
    cycles under both tiers (the ``linked_resident`` seam), so the
    trampoline and regions are pure host wall-clock machinery.  Any
    counter here would differ between the tiers and break the
    bit-identical ``VMStats`` contract; the accounting travels beside
    the run result (:attr:`repro.vm.engine.VMRunResult.link_stats`).
    """

    #: Trampoline hops through a patched direct-exit slot: control went
    #: closure -> closure without returning to the dispatch loop.
    link_direct_hops: int = 0
    #: Trampoline hops through an indirect-exit inline-cache prediction.
    link_ic_hops: int = 0
    #: Linked exits (slot patched or IC-resolved resident) that still
    #: fell back to the dispatch loop: successor uncompilable, or the
    #: instruction budget intervened.  Zero on the stable-chain corpus.
    link_bounces: int = 0
    #: Superblock regions fused from stable hot chains this run.
    regions_fused: int = 0
    #: Entries into a region closure (one per execution of the head).
    region_entries: int = 0
    #: Intra-region junction transitions (exits that never produced a
    #: host-level trace-to-trace transfer at all).
    region_hops: int = 0
    #: Regions dropped because a member left the code cache
    #: (SMC eviction, module unload, cache flush).
    region_invalidations: int = 0
    #: Fusion attempts abandoned (chain too short, member uncompilable,
    #: overlap with an existing region, unstable links).
    fusion_aborts: int = 0

    @property
    def chained_exits(self) -> int:
        """Trace exits that stayed in the code cache host-side."""
        return self.link_direct_hops + self.link_ic_hops + self.region_hops

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (bench tables, session reports)."""
        return {
            "link_direct_hops": self.link_direct_hops,
            "link_ic_hops": self.link_ic_hops,
            "link_bounces": self.link_bounces,
            "regions_fused": self.regions_fused,
            "region_entries": self.region_entries,
            "region_hops": self.region_hops,
            "region_invalidations": self.region_invalidations,
            "fusion_aborts": self.fusion_aborts,
            "chained_exits": self.chained_exits,
        }


@dataclass
class QueueStats:
    """Host-side counters for the background compile queue
    (:mod:`repro.vm.compilequeue`).

    Like :class:`ICStats` and :class:`LinkStats`, deliberately **not**
    part of :class:`VMStats`: whether a trace's closure was produced on
    the execution path (``compile_mode="sync"``) or by a background
    worker is pure host-side scheduling — the trace executes
    bit-identically either way (interpreted while the body is pending,
    compiled after the swap-in), so any counter here would differ
    between compile modes and break the bit-identical ``VMStats``
    contract.  The accounting travels beside the run result
    (:attr:`repro.vm.engine.VMRunResult.queue_stats`).
    """

    #: Cold traces handed to the background queue.
    enqueued: int = 0
    #: Factory resolutions completed by a worker (off the execution path).
    compiled_offpath: int = 0
    #: Finished bodies bound and attached at a later trace entry.
    swap_ins: int = 0
    #: Finished bodies discarded because ``CodeCache.generation``
    #: advanced between enqueue and swap-in (SMC eviction, module
    #: unload, cache flush) — the trace is re-enqueued, and the factory
    #: memo makes the second resolution nearly free.
    generation_discards: int = 0
    #: Enqueue attempts that found the queue full and compiled
    #: synchronously instead (backpressure never drops a trace).
    queue_full_syncs: int = 0
    #: Deepest backlog observed at enqueue time.
    backlog_high_water: int = 0
    #: Trace executions taken interpreted because the body was still
    #: pending (enqueued or in flight) at entry.
    interpreted_runs: int = 0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (bench tables, session reports)."""
        return {
            "enqueued": self.enqueued,
            "compiled_offpath": self.compiled_offpath,
            "swap_ins": self.swap_ins,
            "generation_discards": self.generation_discards,
            "queue_full_syncs": self.queue_full_syncs,
            "backlog_high_water": self.backlog_high_water,
            "interpreted_runs": self.interpreted_runs,
        }


@dataclass
class VMStats:
    """Cycle and event accounting for one run under the VM."""

    # -- VM overhead components ------------------------------------------------
    translation_cycles: float = 0.0
    dispatch_cycles: float = 0.0
    persistence_cycles: float = 0.0
    # -- translated-code components ---------------------------------------------
    translated_exec_cycles: float = 0.0
    emulation_cycles: float = 0.0
    analysis_cycles: float = 0.0

    # -- event counters -----------------------------------------------------------
    instructions_executed: int = 0
    traces_translated: int = 0
    traces_from_persistent: int = 0
    persistent_traces_invalidated: int = 0
    vm_entries: int = 0
    link_patches: int = 0
    indirect_resolutions: int = 0
    syscalls_emulated: int = 0
    signals_emulated: int = 0
    cache_flushes: int = 0
    analysis_calls: int = 0
    smc_invalidations: int = 0
    module_loads: int = 0
    module_unloads: int = 0
    module_traces_retained: int = 0
    #: Storage-level persistence failures absorbed without crashing the
    #: run (corrupt cache files, ENOSPC/EIO at write-back, ...).
    persistence_storage_errors: int = 0
    #: 1 when a storage failure downgraded the run to JIT-only execution;
    #: measurement drivers assert this stayed 0 so no silent fallback can
    #: masquerade as a persistence result.
    persistence_degraded: int = 0

    #: (cycle timestamp, original entry address) per translation request —
    #: the vertical lines of Figure 2(a).
    translation_events: List[Tuple[float, int]] = field(default_factory=list)

    #: Static code translated, by image path (for coverage accounting).
    translated_bytes_by_image: Dict[str, int] = field(default_factory=dict)

    #: ``(image_path, image_offset, size)`` of every trace translated this
    #: run — the static code footprint used for code-coverage matrices.
    trace_identities: set = field(default_factory=set)

    _total: float = 0.0

    # -- charging helpers ---------------------------------------------------------

    def charge_translation(self, cycles: float) -> None:
        """Charge trace-compilation work (VM overhead)."""
        self.translation_cycles += cycles
        self._total += cycles

    def charge_dispatch(self, cycles: float) -> None:
        """Charge VM round-trips, linking, flushes (VM overhead)."""
        self.dispatch_cycles += cycles
        self._total += cycles

    def charge_persistence(self, cycles: float) -> None:
        """Charge cache load/validate/write work (VM overhead)."""
        self.persistence_cycles += cycles
        self._total += cycles

    def charge_exec(self, cycles: float) -> None:
        """Charge code-cache execution of application code."""
        self.translated_exec_cycles += cycles
        self._total += cycles

    def charge_emulation(self, cycles: float) -> None:
        """Charge syscall/signal emulation (translated-code time)."""
        self.emulation_cycles += cycles
        self._total += cycles

    def charge_analysis(self, cycles: float) -> None:
        """Charge instrumentation analysis (translated-code time)."""
        self.analysis_cycles += cycles
        self._total += cycles

    def record_translation_event(self, entry: int) -> None:
        """Timestamp a translation request (Figure 2(a) data point)."""
        self.translation_events.append((self._total, entry))

    # -- aggregates -----------------------------------------------------------------

    @property
    def vm_overhead_cycles(self) -> float:
        """Cost of dynamically generating application code (paper §2.2)."""
        return (
            self.translation_cycles
            + self.dispatch_cycles
            + self.persistence_cycles
        )

    @property
    def translated_code_cycles(self) -> float:
        """Time executing the dynamically compiled application code."""
        return (
            self.translated_exec_cycles
            + self.emulation_cycles
            + self.analysis_cycles
        )

    @property
    def total_cycles(self) -> float:
        """All cycles charged so far (the run's simulated time)."""
        return self._total

    def overhead_fraction(self) -> float:
        """VM overhead as a fraction of the total run time."""
        total = self.total_cycles
        return self.vm_overhead_cycles / total if total else 0.0

    def breakdown(self) -> Dict[str, float]:
        """All components, for reports."""
        return {
            "translation": self.translation_cycles,
            "dispatch": self.dispatch_cycles,
            "persistence": self.persistence_cycles,
            "translated_exec": self.translated_exec_cycles,
            "emulation": self.emulation_cycles,
            "analysis": self.analysis_cycles,
            "vm_overhead": self.vm_overhead_cycles,
            "translated_code": self.translated_code_cycles,
            "total": self.total_cycles,
        }
