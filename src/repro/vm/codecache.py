"""The intra-execution software code cache.

Holds translated traces and their data structures in two separately
managed pools (paper §3.2.2: "persistent memory pools for data structures
and traces are maintained separately ... intermixing code and data
structures results in poor performance"), maintains the translation map
(original address -> code-cache resident), and patches direct links
between traces so that "subsequent executions of the same code require no
re-translation and control remains in the code cache".

When either pool is exhausted the cache is *flushed*: all translated code
and data structures are discarded (the reclamation policy the paper's Pin
uses for its reserved 512MB region).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.vm.translator import LinkSlot, TranslatedTrace

#: Pool sizes used when none are specified: "512MB of an application's
#: address space (a tunable parameter) is reserved for Pin's use.  The
#: pre-allocated memory is equally divided between the code cache and its
#: supporting data structures."  The reproduction's workloads are scaled
#: down ~3 orders of magnitude from the paper's, so the default pools are
#: scaled down by 2**8 while preserving the equal split; like the paper's
#: runs, no evaluated workload triggers a flush at this size.  Experiments
#: exercising the flush path pass explicit smaller sizes.
DEFAULT_CODE_POOL_BYTES = 256 * 1024 * 1024 // 256
DEFAULT_DATA_POOL_BYTES = 256 * 1024 * 1024 // 256


class CacheFull(Exception):
    """Raised when inserting a trace would overflow a pool."""


@dataclass
class CodeCacheStats:
    """Occupancy and activity counters."""

    traces_inserted: int = 0
    flushes: int = 0
    link_patches: int = 0
    lookups: int = 0
    hits: int = 0
    regions_registered: int = 0
    region_invalidations: int = 0


class CodeCache:
    """Software-managed cache of translated traces."""

    def __init__(
        self,
        code_capacity: int = DEFAULT_CODE_POOL_BYTES,
        data_capacity: int = DEFAULT_DATA_POOL_BYTES,
        page_tracker: Optional[set] = None,
    ):
        if code_capacity <= 0 or data_capacity <= 0:
            raise ValueError("pool capacities must be positive")
        self.code_capacity = code_capacity
        self.data_capacity = data_capacity
        #: Machine-owned set of executed-code page numbers.  The SMC
        #: detector only watches pages in this set, so *every* page a
        #: resident trace covers must be in it — including traces that
        #: arrive without a fresh translation (module-retention revival,
        #: persistent-cache preload), whose pages ``Machine.fetch``
        #: never saw (or saw before a dlclose discarded the tracking).
        self.page_tracker = page_tracker
        self.code_used = 0
        self.data_used = 0
        self.stats = CodeCacheStats()
        #: Monotonic invalidation epoch, bumped whenever any trace leaves
        #: the cache (evict or flush).  The compiled tier's indirect
        #: inline caches validate against it: a cached (target ->
        #: resident) pair is only trusted while the generation matches,
        #: so an IC can never chain to an evicted trace.  Insertions do
        #: not bump it — adding a resident cannot stale a cached one.
        self.generation = 0
        #: The translation map: original entry address -> resident trace.
        self._by_entry: Dict[int, TranslatedTrace] = {}
        #: Unresolved direct exits, keyed by their original target address.
        self._pending_links: Dict[int, List[LinkSlot]] = {}
        #: Superblock regions: head entry -> member entries, in chain
        #: order (head first).  The head trace's ``compiled_body`` is the
        #: fused region closure; a region dies as a unit the moment any
        #: member leaves the cache.
        self._regions: Dict[int, Tuple[int, ...]] = {}
        #: Reverse index: member entry -> owning region's head entry
        #: (heads map to themselves).  A trace belongs to at most one
        #: region.
        self._region_of: Dict[int, int] = {}

    # -- lookup -------------------------------------------------------------

    def lookup(self, original_addr: int) -> Optional[TranslatedTrace]:
        """Translation-map query: trace whose entry is ``original_addr``."""
        self.stats.lookups += 1
        found = self._by_entry.get(original_addr)
        if found is not None:
            self.stats.hits += 1
        return found

    def __contains__(self, original_addr: int) -> bool:
        return original_addr in self._by_entry

    def __len__(self) -> int:
        return len(self._by_entry)

    def traces(self) -> List[TranslatedTrace]:
        """All resident traces, in insertion order."""
        return list(self._by_entry.values())

    # -- insertion & linking --------------------------------------------------

    def insert(self, translated: TranslatedTrace) -> int:
        """Add a trace; link it both ways; return the number of patches.

        Raises:
            CacheFull: if either pool would overflow.  The caller decides
                whether to flush and retry.
        """
        entry = translated.entry
        if entry in self._by_entry:
            raise ValueError("trace at 0x%x is already resident" % entry)
        if self.code_used + translated.code_size > self.code_capacity:
            raise CacheFull("code pool exhausted")
        if self.data_used + translated.data_size > self.data_capacity:
            raise CacheFull("data pool exhausted")

        translated.cache_offset = self.code_used
        self.code_used += translated.code_size
        self.data_used += translated.data_size
        self._by_entry[entry] = translated
        self.stats.traces_inserted += 1
        if self.page_tracker is not None:
            from repro.machine.cpu import CODE_PAGE_SHIFT

            first = translated.trace.entry >> CODE_PAGE_SHIFT
            last = (translated.trace.end - 1) >> CODE_PAGE_SHIFT
            self.page_tracker.update(range(first, last + 1))

        patches = 0
        # Incoming: every pending exit that targets this entry.  The
        # resident itself is cached on the slot so following the patched
        # link is a single attribute load, not a translation-map lookup.
        for slot in self._pending_links.pop(entry, ()):  # noqa: B020
            slot.linked_entry = entry
            slot.linked_resident = translated
            patches += 1
        # Outgoing: link exits whose target is already resident, otherwise
        # queue them for when the target arrives.
        for slot in translated.links:
            if not slot.is_linkable:
                continue
            target = slot.exit.target
            resident = self._by_entry.get(target)
            if resident is not None:
                slot.linked_entry = target
                slot.linked_resident = resident
                patches += 1
            else:
                self._pending_links.setdefault(target, []).append(slot)
        self.stats.link_patches += patches
        return patches

    def evict(self, entry: int) -> TranslatedTrace:
        """Remove one trace (persistent-cache invalidation path).

        Incoming links to it are unlinked (they fall back to the VM
        trampoline); its own pending outgoing links are discarded.
        """
        translated = self._by_entry.pop(entry, None)
        if translated is None:
            raise KeyError("no trace at 0x%x" % entry)
        self.generation += 1
        self.code_used -= translated.code_size
        self.data_used -= translated.data_size
        # The compiled-tier closure dies with its cache residency (SMC or
        # module unload invalidated the code it specializes).
        translated.invalidate_compiled()
        # A superblock region dies as a unit with any of its members: the
        # fused closure bakes in every member's instruction stream.
        self.invalidate_region_containing(entry)
        for other in self._by_entry.values():
            for slot in other.links:
                if slot.linked_entry == entry:
                    # Unlink (both the entry and the cached resident) and
                    # re-queue as pending: a future translation at this
                    # entry must re-link the exit eagerly.
                    slot.unlink()
                    self._pending_links.setdefault(entry, []).append(slot)
        # LinkSlot is a value-equal dataclass, so membership tests must
        # compare by identity here: two traces' slots with the same exit
        # shape are equal, and removing "equal" slots would silently drop
        # *another* resident's pending link.
        own_slots = {id(slot) for slot in translated.links}
        for slots in self._pending_links.values():
            slots[:] = [slot for slot in slots if id(slot) not in own_slots]
        return translated

    def evict_range(self, start: int, end: int) -> List[TranslatedTrace]:
        """Evict every trace overlapping ``[start, end)`` — the
        invalidation path for self-modifying code and module unloads
        ("all other traces are invalidated by removing their information
        from the translation map", paper §3.2.1).  Returns the evicted
        traces (module-aware retention re-registers them on reload)."""
        victims = [
            entry
            for entry, translated in self._by_entry.items()
            if translated.trace.entry < end and start < translated.trace.end
        ]
        return [self.evict(entry) for entry in victims]

    def flush(self) -> int:
        """Discard all translated code and data structures."""
        discarded = len(self._by_entry)
        self.generation += 1
        for translated in self._by_entry.values():
            translated.invalidate_compiled()
            for slot in translated.links:
                slot.unlink()
        self._by_entry.clear()
        self._pending_links.clear()
        self.stats.region_invalidations += len(self._regions)
        self._regions.clear()
        self._region_of.clear()
        self.code_used = 0
        self.data_used = 0
        self.stats.flushes += 1
        return discarded

    # -- superblock regions ----------------------------------------------------

    def register_region(self, member_entries: List[int]) -> None:
        """Record a fused superblock over ``member_entries`` (chain
        order, head first).  Callers must have installed the fused
        closure as the head trace's ``compiled_body``.

        Raises:
            ValueError: if the chain is degenerate, a member is not
                resident, or a member already belongs to a region — the
                fusion driver is expected to pre-check all three.
        """
        if len(member_entries) < 2:
            raise ValueError("a region needs at least two members")
        for entry in member_entries:
            if entry not in self._by_entry:
                raise ValueError("region member 0x%x is not resident" % entry)
            if entry in self._region_of:
                raise ValueError(
                    "trace 0x%x already belongs to a region" % entry
                )
        head = member_entries[0]
        self._regions[head] = tuple(member_entries)
        for entry in member_entries:
            self._region_of[entry] = head
        self.stats.regions_registered += 1

    def region_of(self, entry: int) -> Optional[int]:
        """Head entry of the region containing ``entry``, or None."""
        return self._region_of.get(entry)

    def region_members(self, head_entry: int) -> Tuple[int, ...]:
        """Member entries of the region headed at ``head_entry``."""
        return self._regions.get(head_entry, ())

    def regions(self) -> Dict[int, Tuple[int, ...]]:
        """All live regions, head entry -> member entries."""
        return dict(self._regions)

    def invalidate_region_containing(self, entry: int) -> bool:
        """Drop the region that ``entry`` belongs to, if any.

        The head trace's fused closure is invalidated (if the head is
        still resident it falls back to its solo closure on the next
        compile); middle members always kept their solo closures, so no
        other state needs repair.  Returns True when a region died.
        """
        head = self._region_of.get(entry)
        if head is None:
            return False
        members = self._regions.pop(head)
        for member in members:
            self._region_of.pop(member, None)
        resident_head = self._by_entry.get(head)
        if resident_head is not None:
            resident_head.invalidate_compiled()
        self.stats.region_invalidations += 1
        return True

    # -- reporting -------------------------------------------------------------

    def occupancy(self) -> Tuple[int, int]:
        """(code_used, data_used) in bytes."""
        return self.code_used, self.data_used
