"""The trace-compilation tier: specialize traces into Python closures.

The interpreted dispatcher (:meth:`repro.vm.engine.Engine` with
``dispatch_mode="interpreted"``) re-pays Python-level interpretation cost
on every micro-op: a ``step_uop`` call, a tuple unpack, and a long
opcode-compare chain per instruction, plus per-callback context handling
and per-step accounting.  That is exactly the overhead the source paper's
engine avoids by *emitting* specialized code once and executing it many
times — so this module does the same one level up: it compiles each
:class:`~repro.vm.translator.TranslatedTrace` into **one straight-line
Python closure** whose body inlines the trace's opcode semantics.

Specializations applied per trace:

* opcode semantics inlined from the shared per-op expression table
  (:data:`repro.machine.cpu.UOP_VALUE_EXPRESSIONS`) — no ``step_uop``
  call, no tuple dispatch, register indexes and immediates baked in as
  literals;
* the signed-64-bit wrap check is dropped for ops that provably cannot
  overflow (:data:`repro.machine.cpu.OVERFLOW_SAFE_OPS`);
* analysis-point checks are hoisted out entirely for traces with no
  instrumentation; instrumented sites inline the callback invocation
  against the run's single mutable :class:`AnalysisContext`;
* instruction/cycle accounting is batched per exit: the step count to
  every exit is a compile-time constant, so each exit performs one
  counter add and one pre-multiplied ``charge_exec`` call;
* branch exits resolve through link-slot locals captured at
  specialization time.

The closure's observable behavior is **bit-identical** to the interpreted
tier: same registers/memory effects, same exception types and messages,
same ``VMStats`` counters and the same cycle floats charged in the same
order (cost-model products are folded at compile time, which produces the
identical IEEE result to the runtime multiply).  The interpreted tier
stays the reference oracle; ``tests/test_dispatch_equivalence.py``
enforces the equivalence over the workloads corpus.

Compiled bodies are plain Python objects attached to the resident trace
(:attr:`TranslatedTrace.compiled_body`).  They are invalidated with the
trace on code-cache eviction (self-modifying code, module unload) and
flush, and are never persisted: a preloaded persistent trace recompiles
lazily on its first execution, whose cost is already charged as the
demand-load of the trace (simulated cycles are identical across tiers by
construction — host-level compilation time is the price the simulator
pays once to run many times faster).

Generated **closure factories** are memoized in a module-level table
keyed by everything the source bakes in (uops, entry, links, points,
cost constants), so retranslating the same code — a warm persistent run,
a second application sharing a library at the same base, a module reload
— skips source generation and host compilation entirely and just
re-binds the factory to the new run's captures.  The memo is this
reproduction's own little persistent code cache, one meta-level up.

Two PR-3 extensions complete that story:

* **Persisted bodies** — when a persistence session attaches a
  :class:`repro.persist.sidecar.CompiledBodyStore`, every factory's
  compiled code object is recorded (as ``marshal`` bytes keyed by a
  digest of the factory-memo key) and revived on the next process's
  first run, skipping source generation *and* host ``compile()``
  entirely.  The sidecar is keyed on ``VM_VERSION`` + the host bytecode
  tag, so any codegen or interpreter change invalidates it wholesale.
* **Indirect-branch inline caches** — a JR/RET/CALLR exit carries a
  per-closure **polymorphic chain** of up to :data:`IC_CHAIN_DEPTH`
  ``(target, resident)`` predictions (Pin's indirect-branch chaining),
  guarded wholesale by the code-cache generation.  A hit anywhere in
  the chain hands the resident trace straight back to the dispatcher
  (deeper hits move their entry to the front, so repeating targets stay
  cheap); a miss resolves through the translation map and refills the
  front of the chain; a generation advance (eviction/flush) discards
  the whole chain before it can dispatch a stale resident.  The cycle
  charge and ``indirect_resolutions`` count are identical on every
  path — the IC is host-side memoization of the resolver, not a
  simulated-cost change — and the chain's hit/miss/depth accounting
  lands in :class:`repro.vm.stats.ICStats`, outside ``VMStats``.
  A **megamorphic overflow tier** backs the chain: every resident the
  site ever resolved is also remembered in a per-site hash table, so a
  target that cycled out of the bounded chain still dispatches without
  a translation-map lookup (``ICStats.overflow_hits``).

Two PR-7 extensions close the paper's trace-linking story:

* **Direct-exit linking** — every direct exit now returns the successor
  *closure's trace* alongside its link slot, probed straight off the
  slot's ``linked_resident`` seam.  The engine's chain trampoline
  (:meth:`repro.vm.engine.Engine._execute_trace`) calls the successor's
  closure immediately — a patched hot exit never re-enters the
  dispatcher.  Safety is inherited, not re-invented: eviction/SMC/flush
  eagerly unlink every incoming slot (the interpreter's invariant), so
  a probe can never produce an evicted trace.
* **Superblock regions** — a stable hot chain of direct-linked traces
  (final-exit links only, so regions are straight-line) is fused by
  :meth:`TraceCompiler.compile_region` into one closure concatenating
  the member bodies.  Each junction re-emits the member's exact exit
  accounting (same float literals, same order — batching never sums
  across members, which would break IEEE bit-identity), then guards on
  link identity (``slot.linked_resident is next_member``) and the
  instruction budget before falling through into the next member's
  inlined body; a failed guard side-exits through the member's own
  slot, exactly like the solo closure.  Region factories flow through
  the same memo and sidecar as trace factories (link state and member
  objects are runtime captures, never marshaled).
"""

from __future__ import annotations

import hashlib
import marshal
import threading
import time
from types import SimpleNamespace
from typing import Dict, List, Optional

from repro.isa.instructions import INSTRUCTION_SIZE
from repro.isa import registers as regs
from repro.loader.mapper import to_signed_word
from repro.machine.costs import CostModel
from repro.machine.cpu import (
    CODE_PAGE_SHIFT,
    MachineFault,
    OVERFLOW_SAFE_OPS,
    UOP_VALUE_EXPRESSIONS,
    halt_step_event,
    syscall_uop_step,
)
from repro.vm.client import AnalysisContext, PointKind, ToolAccounting
from repro.vm.stats import IC_CHAIN_DEPTH, ICStats, LinkStats, VMStats
from repro.vm.trace import ExitKind
from repro.vm.translator import TranslatedTrace

#: Sentinel stored in ``TranslatedTrace.compiled_body`` when a trace
#: cannot be specialized; the engine then executes it interpreted.
UNCOMPILABLE = object()

#: Trampoline hops through one final-exit link before the engine tries
#: to fuse the chain downstream into a superblock region.  Low enough
#: that steady-state loops fuse almost immediately, high enough that a
#: cold path never pays region compilation.
REGION_FUSE_THRESHOLD = 16
#: Maximum member traces in one fused region (keeps generated bodies,
#: and the blast radius of one member's invalidation, bounded).
REGION_MAX_MEMBERS = 8


class CompileError(Exception):
    """Raised when a trace cannot be specialized into a closure."""


# Opcode integer constants (mirroring repro.machine.cpu's fast path).
_NOP = 0x00
_DIV = 0x04
_SHRI = 0x15
_LD, _ST = 0x20, 0x21
_BEQ, _BNE, _BLT, _BGE = 0x30, 0x31, 0x32, 0x33
_JMP, _CALL, _JR, _CALLR, _RET = 0x38, 0x39, 0x3A, 0x3B, 0x3C
_SYSCALL, _HALT = 0x40, 0x41

_BRANCH_CONDITIONS = {
    _BEQ: "==",
    _BNE: "!=",
    _BLT: "<",
    _BGE: ">=",
}

_INT64_MIN = -9223372036854775808
_INT64_MAX = 9223372036854775807

#: Memoized closure factories, keyed by everything the generated source
#: bakes in (see :func:`_trace_key`).  Each value is a ``(make, digest,
#: body_bytes, cost_us)`` tuple: the compiled ``_make`` function, the
#: sidecar digest of its key, the ``marshal`` serialization of its code
#: object (so a memo hit can still populate a fresh sidecar without
#: recompiling), and the measured host ``compile()`` wall clock in
#: microseconds (0 when the factory was revived from a sidecar rather
#: than compiled here — the shared store's cost-aware admission treats
#: unmeasured bodies as free to recompute).  A hit skips source
#: generation, host compilation *and* the module ``exec`` — the factory
#: is simply re-bound to the new run's captures.  Bounded: the table is
#: flushed wholesale when it outgrows the cap (the same reclamation
#: policy the code cache uses).
_FACTORIES: Dict[tuple, tuple] = {}
_FACTORIES_CAP = 8192

#: Serializes factory resolution (memo probe + sidecar lookup + host
#: compile + memo/store insertion) so background compile-queue workers
#: (:mod:`repro.vm.compilequeue`) and the engine thread never interleave
#: inside the critical section.  Binding a resolved factory to a run's
#: captures happens outside the lock — it touches no shared state.
_FACTORY_LOCK = threading.Lock()


def _body_digest(key: tuple) -> str:
    """Sidecar name of one factory: a digest of the full memo key.

    The key already encodes everything the generated source depends on,
    so equal digests imply byte-identical factory code; the VM version
    and host bytecode tag are keyed at the store level
    (:mod:`repro.persist.sidecar`), not per entry.
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()


class _NullCodeCache:
    """Stand-in when no code cache is attached (direct compiler use):
    indirect inline caches never validate and never fill."""

    generation = -1

    @staticmethod
    def lookup(original_addr: int):
        return None


def code_object_cache_size() -> int:
    """Number of memoized closure factories (introspection/tests)."""
    return len(_FACTORIES)


def clear_code_object_cache() -> None:
    """Drop every memoized factory (tests/benchmark hygiene)."""
    _FACTORIES.clear()


def _trace_key(translated: TranslatedTrace, cost: CostModel) -> tuple:
    """Everything the generated source depends on, as a hashable key.

    Two traces with equal keys generate byte-identical source: the uops
    (all operands are baked as literals), the entry address (PCs are
    baked), the exit/link structure, the instrumentation shape (labels,
    charges, effective-address requests — callbacks themselves flow
    through the capture namespace), and the cost-model constants folded
    into charge literals.
    """
    trace = translated.trace
    points_sig = tuple(
        (0 if point.kind == PointKind.TRACE_ENTRY else point.index,
         point.label, float(point.work_cycles),
         bool(point.wants_effective_address))
        for point in translated.points
    )
    links_sig = tuple(
        (int(slot.exit.kind), slot.exit.index) for slot in translated.links
    )
    # The instruction operands are keyed via their *encoded* form:
    # ``code_bytes`` starts with the body encoding, and hashing one bytes
    # object is far cheaper than rebuilding the uop tuple-of-tuples.
    return (
        trace.entry,
        translated.code_bytes,
        links_sig,
        points_sig,
        cost.translated_inst,
        cost.analysis_call,
        cost.indirect_resolution,
    )


def _flt(value: float) -> str:
    """A float literal that round-trips exactly (repr is lossless)."""
    return repr(float(value))


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, line: str, depth: int = 2) -> None:
        self.lines.append("    " * depth + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _store(
    out: _Emitter, uses: set, rd: int, expr: str, *, may_overflow: bool
) -> None:
    """Emit a register write with the wrap check only when needed."""
    if rd == regs.ZERO:
        return  # writes to the zero register are discarded
    if not may_overflow:
        out.emit("r[%d] = %s" % (rd, expr))
        return
    uses.add("to_signed")
    out.emit("v = %s" % expr)
    out.emit(
        "r[%d] = v if %d <= v <= %d else to_signed(v)"
        % (rd, _INT64_MIN, _INT64_MAX)
    )


def _capture_lists(translated: TranslatedTrace):
    """The run-varying objects a trace's closure captures, in the
    canonical order both :meth:`TraceCompiler._generate` (naming) and
    :meth:`TraceCompiler._captures` (binding on factory-memo hits) use:
    the final slot first, then per instruction its analysis callbacks
    followed by its branch slot."""
    slots: List[object] = []
    callbacks: List[object] = []
    final = translated.final_slot
    if final is not None:
        slots.append(final)
    points_by_index = translated.points_by_index
    for index, inst in enumerate(translated.trace.instructions):
        for point in points_by_index.get(index, ()):
            callbacks.append(point.callback)
        if inst.opcode in _BRANCH_CONDITIONS and inst.imm != 0:
            slot = translated.branch_slots.get(index)
            if slot is None:
                raise CompileError(
                    "conditional branch at %d has no link slot" % index
                )
            slots.append(slot)
    return slots, callbacks


class TraceCompiler:
    """Per-run compiler: specializes traces against this run's context.

    The compiler captures the run-scoped objects (machine, stats, tool
    accounting, the shared mutable analysis context) so generated
    closures reference them directly; a compiler — like the code cache it
    feeds — never outlives its engine run.
    """

    def __init__(
        self,
        machine,
        stats: VMStats,
        accounting: ToolAccounting,
        cost_model: CostModel,
        analysis_context: AnalysisContext,
        code_cache=None,
        ic_stats: Optional[ICStats] = None,
        link_stats: Optional[LinkStats] = None,
        max_instructions: Optional[int] = None,
    ):
        self.machine = machine
        self.stats = stats
        self.accounting = accounting
        self.cost = cost_model
        self.acx = analysis_context
        cache = code_cache if code_cache is not None else _NullCodeCache()
        #: Aggregated inline-cache accounting across every closure this
        #: compiler builds (host-side only, never part of VMStats).
        self.ic_stats = ic_stats if ic_stats is not None else ICStats()
        #: Cross-trace linking accounting, shared with the engine's chain
        #: trampoline (host-side only, never part of VMStats).
        self.link_stats = link_stats if link_stats is not None else LinkStats()
        #: Traces specialized by this compiler (introspection/tests).
        self.compiled_count = 0
        #: Superblock regions fused by this compiler.
        self.regions_compiled = 0
        #: Host code-object memo hits observed by this compiler.
        self.code_memo_hits = 0
        #: Host ``compile()`` calls this compiler actually paid (factory
        #: memo misses that the sidecar could not serve either).
        self.host_compiles = 0
        #: Factory code objects revived from the persisted sidecar.
        self.sidecar_hits = 0
        #: The attached compiled-body sidecar store, or None (attached by
        #: the persistence session via :meth:`attach_body_store`).
        self.body_store = None
        #: The run-scoped capture namespace, shared by every closure this
        #: compiler builds (per-trace state travels separately).
        self._context = SimpleNamespace(
            machine=machine,
            stats=stats,
            to_signed=to_signed_word,
            MachineFault=MachineFault,
            read_word=machine.process.space.read_word,
            write_word=machine.process.space.write_word,
            pages=machine.executed_code_pages,
            code_write=machine.on_code_write,
            syscall_step=syscall_uop_step,
            halt_event=halt_step_event,
            acx=analysis_context,
            record_call=accounting.record_call,
            cache=cache,
            cache_lookup=cache.lookup,
            ics=self.ic_stats,
            links=self.link_stats,
            # Region junctions re-check the instruction budget inline so a
            # fused chain faults exactly where the dispatcher would have.
            # Run-scoped capture (not baked into source) so region
            # factories stay budget-independent for memo/sidecar reuse.
            budget=(
                max_instructions if max_instructions is not None else 1 << 62
            ),
        )

    def attach_body_store(self, store) -> None:
        """Attach a :class:`~repro.persist.sidecar.CompiledBodyStore`.

        Subsequent factory-memo misses first try the store (reviving the
        marshaled code object skips source generation and host
        ``compile()``), and every factory this compiler touches is
        recorded into it so the write-back persists a complete set.
        """
        self.body_store = store

    # -- public API -----------------------------------------------------------

    def prepare(self, translated: TranslatedTrace):
        """Resolve the closure factory for ``translated`` without binding.

        This is the expensive, run-independent half of :meth:`compile` —
        memo probe, sidecar revive, or source generation + host
        ``compile()`` — and the only half a background compile-queue
        worker runs.  Thread-safe: the whole resolution holds
        :data:`_FACTORY_LOCK`.  Returns an opaque prepared handle for
        :meth:`bind`, or None when the trace is uncompilable (the caller
        attaches :data:`UNCOMPILABLE`).
        """
        try:
            key = _trace_key(translated, self.cost)
            slots, callbacks = _capture_lists(translated)
            with _FACTORY_LOCK:
                cached = _FACTORIES.get(key)
                if cached is None:
                    digest = _body_digest(key)
                    make, body_bytes, cost_us = self._build_factory(
                        lambda: self._generate(translated, slots, callbacks),
                        "<trace@0x%x>" % translated.entry,
                        digest,
                    )
                    if len(_FACTORIES) >= _FACTORIES_CAP:
                        _FACTORIES.clear()
                    _FACTORIES[key] = (make, digest, body_bytes, cost_us)
                else:
                    make, digest, body_bytes, cost_us = cached
                    self.code_memo_hits += 1
                    store = self.body_store
                    if store is not None and digest not in store.entries:
                        # A fresh (or pruned) sidecar still learns bodies
                        # the in-process memo already knows, at zero
                        # compile cost.
                        store.record_bytes(digest, body_bytes,
                                           cost_us=cost_us)
        except CompileError:
            return None
        return make, slots, callbacks

    def bind(self, translated: TranslatedTrace, prepared):
        """Bind a :meth:`prepare`\\ d factory to this run's captures.

        Cheap and run-scoped; must run on the engine thread (the closure
        references the live machine).  Attaches and returns the body.
        """
        make, slots, callbacks = prepared
        body = make(self._context, slots, callbacks)
        translated.compiled_body = body
        self.compiled_count += 1
        return body

    def compile(self, translated: TranslatedTrace):
        """Specialize ``translated``; attach and return the closure.

        On failure the :data:`UNCOMPILABLE` sentinel is attached and
        returned, and the engine executes the trace interpreted — the
        tiers are observably identical, so falling back is always safe.
        """
        prepared = self.prepare(translated)
        if prepared is None:
            translated.compiled_body = UNCOMPILABLE
            return UNCOMPILABLE
        return self.bind(translated, prepared)

    def compile_region(self, members: List[TranslatedTrace]):
        """Fuse a stable hot chain into one superblock closure.

        ``members`` is the chain in execution order (head first); every
        member must be resident and every junction link patched — the
        engine's fusion driver (:meth:`repro.vm.engine.Engine._maybe_fuse`)
        validates both.  Returns the region closure (the caller installs
        it as the *head* trace's ``compiled_body``; middle members keep
        their solo closures for middle entry), or None when any member
        cannot be specialized.

        Region factories ride the same memo and sidecar as trace
        factories under a composite key: link slots, member trace
        objects and analysis callbacks are runtime captures re-bound per
        run, so no link state ever enters the marshaled code object.
        """
        try:
            key = ("region",) + tuple(
                _trace_key(member, self.cost) for member in members
            )
            slots: List[object] = []
            callbacks: List[object] = []
            for member in members:
                member_slots, member_callbacks = _capture_lists(member)
                slots.extend(member_slots)
                callbacks.extend(member_callbacks)
            with _FACTORY_LOCK:
                cached = _FACTORIES.get(key)
                if cached is None:
                    digest = _body_digest(key)
                    make, body_bytes, cost_us = self._build_factory(
                        lambda: self._generate_region(
                            members, slots, callbacks
                        ),
                        "<region@0x%x>" % members[0].entry,
                        digest,
                    )
                    if len(_FACTORIES) >= _FACTORIES_CAP:
                        _FACTORIES.clear()
                    _FACTORIES[key] = (make, digest, body_bytes, cost_us)
                else:
                    make, digest, body_bytes, cost_us = cached
                    self.code_memo_hits += 1
                    store = self.body_store
                    if store is not None and digest not in store.entries:
                        store.record_bytes(digest, body_bytes,
                                           cost_us=cost_us)
            body = make(self._context, slots, callbacks, members)
        except CompileError:
            return None
        self.regions_compiled += 1
        return body

    def _build_factory(self, source_fn, filename: str, digest: str):
        """Produce ``(make, marshal_bytes, cost_us)`` for a memo miss.

        Tries the attached sidecar first — a hit ``exec``\\ s the revived
        code object, skipping source generation and host ``compile()``
        (reported cost 0: nothing was measured, and an unmeasured body is
        treated as free to recompute by cost-aware admission); a miss (or
        no store) compiles from ``source_fn()``, measures the host
        ``compile()`` wall clock, and records the result into the store
        for the next process.  Caller holds :data:`_FACTORY_LOCK`.
        """
        store = self.body_store
        if store is not None:
            code = store.lookup_code(digest)
            if code is not None:
                namespace: Dict[str, object] = {}
                try:
                    exec(code, namespace)  # noqa: S102 - keyed on VM version
                    make = namespace["_make"]
                except Exception:
                    # A structurally valid blob that does not define the
                    # factory (foreign or hand-damaged content the CRCs
                    # cannot judge): treat as a miss and recompile.
                    pass
                else:
                    self.sidecar_hits += 1
                    return make, store.entries[digest], 0
        source = source_fn()
        start = time.perf_counter()
        code = compile(source, filename, "exec")
        cost_us = int((time.perf_counter() - start) * 1_000_000)
        self.host_compiles += 1
        namespace = {}
        exec(code, namespace)  # noqa: S102 - self-generated source
        make = namespace["_make"]
        body_bytes = marshal.dumps(code)
        if store is not None:
            store.record_bytes(digest, body_bytes, cost_us=cost_us)
        return make, body_bytes, cost_us

    # -- code generation -------------------------------------------------------

    #: Capture-namespace names the factory preamble may bind (in this
    #: order); only the ones the generated body actually uses are bound.
    _CAPTURE_NAMES = (
        "to_signed", "MachineFault", "read_word", "write_word",
        "pages", "code_write", "syscall_step", "halt_event", "acx",
        "record_call", "cache", "cache_lookup", "ics", "links", "budget",
    )

    def _generate(self, translated: TranslatedTrace, slots, callbacks) -> str:
        """Produce the factory source for one trace.

        The source defines ``_make(C, slots, callbacks)``, a factory that
        binds the run-scoped capture namespace ``C`` plus this trace's
        link slots and analysis callbacks (in the canonical
        :func:`_capture_lists` order, so a memoized factory re-binds
        correctly) into fast locals and returns the trace closure.
        Everything trace-constant is baked into the source as literals.
        """
        slot_names = {id(slot): "slot%d" % i for i, slot in enumerate(slots)}
        # The body is generated first so the factory preamble can bind
        # only the captures this trace actually references: per-run
        # re-binding of memoized factories is on the warm path, and most
        # traces touch a small subset of the capture namespace.
        uses: set = set()
        emit = _Emitter()
        self._emit_trace_body(emit, uses, translated, slot_names, 0)
        return self._factory_source(
            emit, uses, len(slots), len(callbacks), region_members=0
        )

    def _generate_region(
        self, members: List[TranslatedTrace], slots, callbacks
    ) -> str:
        """Produce the factory source for one superblock region.

        The source defines ``_make(C, slots, callbacks, members)``:
        ``slots``/``callbacks`` concatenate the members' capture lists in
        chain order, ``members`` are the member trace objects the
        junction guards compare by identity.  The body is the members'
        solo bodies concatenated; every junction emits the departing
        member's exact exit accounting, then a link-identity + budget
        guard that either falls through into the next member's body or
        side-exits through the member's own final slot.
        """
        slot_names = {id(slot): "slot%d" % i for i, slot in enumerate(slots)}
        uses: set = {"links"}
        emit = _Emitter()
        emit.emit("links.region_entries += 1")
        cb_base = 0
        for position, member in enumerate(members):
            junction = None
            if position + 1 < len(members):
                junction = self._make_junction(
                    emit, uses, member, members[position + 1],
                    position + 1, slot_names,
                )
            cb_base = self._emit_trace_body(
                emit, uses, member, slot_names, cb_base, junction=junction
            )
        return self._factory_source(
            emit, uses, len(slots), len(callbacks),
            region_members=len(members),
        )

    def _make_junction(self, emit, uses, member, nxt, nxt_pos, slot_names):
        """Build the emit-callback for one intra-region junction.

        The guard is self-healing by construction: eviction/SMC/flush
        eagerly unlink every incoming slot, so ``linked_resident is not
        <next member>`` catches a dead or replaced successor the moment
        control reaches the junction — even for regions already on the
        call stack — and the side exit re-enters the normal (slot,
        resident) protocol.  The budget re-check makes a fused chain
        fault at exactly the boundary the dispatcher would have.
        """
        final = member.final_slot
        if final is None or not final.is_linkable:
            raise CompileError(
                "region member 0x%x has no linkable final exit"
                % member.entry
            )
        final_name = slot_names[id(final)]
        next_name = "m%d" % nxt_pos
        next_entry = nxt.entry

        def junction(target_pc: int, emit_accounting) -> None:
            if target_pc != next_entry:
                raise CompileError(
                    "junction target 0x%x does not reach member 0x%x"
                    % (target_pc, next_entry)
                )
            emit_accounting()
            uses.update(("links", "budget"))
            emit.emit(
                "if %s.linked_resident is not %s"
                " or stats.instructions_executed >= budget:"
                % (final_name, next_name)
            )
            emit.emit(
                "return (%d, %s, None, %s.linked_resident)"
                % (target_pc, final_name, final_name), 3
            )
            emit.emit("%s.executions += 1" % next_name)
            emit.emit("links.region_hops += 1")

        return junction

    def _emit_trace_body(
        self, emit, uses, translated, slot_names, cb_base, junction=None
    ) -> int:
        """Emit one trace's inlined instruction semantics at depth 2.

        Shared by solo-trace and region generation: ``slot_names`` maps
        link-slot identity to bound local names, analysis callbacks are
        named ``cb<k>`` counting from ``cb_base``.  ``junction`` (region
        non-last members only) replaces the final linkable exit's return
        with an inline guard + fall-through into the next member's body.
        Returns the callback index after this trace.
        """
        trace = translated.trace
        uops = trace.uops
        n = len(uops)
        if n == 0:
            raise CompileError("empty trace")
        entry = trace.entry
        cost = self.cost
        ti = cost.translated_inst
        points_by_index = translated.points_by_index

        def exit_accounting(steps: int, depth: int = 2) -> None:
            # Inlined stats.charge_exec — same fields, same order, same
            # pre-folded float literal, so the accumulation is
            # bit-identical to the interpreted tier's method call.
            lit = _flt(steps * ti)
            emit.emit("stats.instructions_executed += %d" % steps, depth)
            emit.emit("stats.translated_exec_cycles += %s" % lit, depth)
            emit.emit("stats._total += %s" % lit, depth)

        final = translated.final_slot
        final_name = slot_names[id(final)] if final is not None else None

        def final_exit(target_pc: int, steps: int, index: int) -> None:
            # The final direct exit (terminator or fall-through): probe
            # the link seam so a patched exit hands the successor trace
            # straight to the engine's chain trampoline.
            if junction is not None:
                if index != n - 1:
                    raise CompileError(
                        "junction exit is not the trace terminator"
                    )
                junction(target_pc, lambda: exit_accounting(steps))
            elif final_name is None:
                exit_accounting(steps)
                emit.emit("return (%d, None, None, None)" % target_pc)
            else:
                exit_accounting(steps)
                emit.emit(
                    "return (%d, %s, None, %s.linked_resident)"
                    % (target_pc, final_name, final_name)
                )

        cb_index = cb_base
        for index in range(n):
            uop = uops[index]
            op, rd, rs1, rs2, imm = uop
            pc = entry + index * INSTRUCTION_SIZE

            for point in points_by_index.get(index, ()):
                cb = "cb%d" % cb_index
                cb_index += 1
                uses.add("acx")
                uses.add("record_call")
                emit.emit("acx.address = %d" % pc)
                emit.emit("acx.trace_entry = %d" % entry)
                emit.emit("acx.index = %d" % index)
                if point.wants_effective_address and op in (_LD, _ST):
                    emit.emit("acx.effective_address = r[%d] + %d" % (rs1, imm))
                else:
                    emit.emit("acx.effective_address = None")
                emit.emit("%s(acx)" % cb)
                charge = _flt(cost.analysis_call + point.work_cycles)
                emit.emit("stats.analysis_cycles += %s" % charge)
                emit.emit("stats._total += %s" % charge)
                emit.emit("stats.analysis_calls += 1")
                emit.emit(
                    "record_call(%r, %s)" % (point.label or "point", charge)
                )

            if op in UOP_VALUE_EXPRESSIONS:
                sh = imm & 63
                expr = UOP_VALUE_EXPRESSIONS[op].format(
                    rs1=rs1, rs2=rs2, imm=imm, sh=sh
                )
                may_overflow = op not in OVERFLOW_SAFE_OPS
                if op == _SHRI and sh != 0:
                    # A non-zero unsigned right shift cannot overflow.
                    may_overflow = False
                _store(emit, uses, rd, expr, may_overflow=may_overflow)
            elif op == _LD:
                uses.update(("read_word", "MachineFault"))
                emit.emit("try:")
                if rd == regs.ZERO:
                    emit.emit("read_word(r[%d] + %d)" % (rs1, imm), 3)
                else:
                    # read_word yields an in-range signed word: no wrap check.
                    emit.emit("r[%d] = read_word(r[%d] + %d)" % (rd, rs1, imm), 3)
                emit.emit("except Exception as exc:")
                emit.emit("raise MachineFault(str(exc), %d) from exc" % pc, 3)
            elif op == _ST:
                uses.update(
                    ("write_word", "MachineFault", "pages", "code_write")
                )
                emit.emit("addr = r[%d] + %d" % (rs1, imm))
                emit.emit("try:")
                emit.emit("write_word(addr, r[%d])" % rs2, 3)
                emit.emit("except Exception as exc:")
                emit.emit("raise MachineFault(str(exc), %d) from exc" % pc, 3)
                # Check the pages of both the first and last written
                # byte: an 8-byte store may straddle a page boundary.
                emit.emit(
                    "if (addr >> %d) in pages or"
                    " ((addr + 7) >> %d) in pages:"
                    % (CODE_PAGE_SHIFT, CODE_PAGE_SHIFT)
                )
                emit.emit("code_write(addr)", 3)
            elif op == _DIV:
                uses.add("MachineFault")
                emit.emit("d = r[%d]" % rs2)
                emit.emit("if d == 0:")
                emit.emit('raise MachineFault("division by zero", %d)' % pc, 3)
                # int(a / b) truncates toward zero via float division —
                # deliberately identical to step_uop, including its
                # precision behavior for large operands.
                _store(emit, uses, rd, "int(r[%d] / d)" % rs1, may_overflow=True)
            elif op in _BRANCH_CONDITIONS:
                if imm != 0:
                    taken = pc + INSTRUCTION_SIZE + imm
                    slot_name = slot_names[id(translated.branch_slots[index])]
                    emit.emit(
                        "if r[%d] %s r[%d]:"
                        % (rs1, _BRANCH_CONDITIONS[op], rs2)
                    )
                    exit_accounting(index + 1, 3)
                    emit.emit(
                        "return (%d, %s, None, %s.linked_resident)"
                        % (taken, slot_name, slot_name), 3
                    )
                # A zero-offset taken branch lands on the fall-through
                # address: indistinguishable from not-taken, stays inline.
            elif op == _JMP:
                final_exit(imm, index + 1, index)
            elif op == _CALL:
                emit.emit("r[%d] = %d" % (regs.LR, pc + INSTRUCTION_SIZE))
                final_exit(imm, index + 1, index)
            elif op in (_JR, _RET, _CALLR):
                source_reg = regs.LR if op == _RET else rs1
                emit.emit("target = r[%d]" % source_reg)
                if op == _CALLR:
                    emit.emit("r[%d] = %d" % (regs.LR, pc + INSTRUCTION_SIZE))
                exit_accounting(index + 1)
                self._emit_indirect_exit(emit, uses, translated, final_name)
            elif op == _SYSCALL:
                uses.add("syscall_step")
                emit.emit(
                    "target, event = syscall_step(machine, %d)"
                    % (pc + INSTRUCTION_SIZE)
                )
                exit_accounting(index + 1)
                emit.emit("return (target, None, event, None)")
            elif op == _HALT:
                uses.add("halt_event")
                emit.emit("event = halt_event()")
                exit_accounting(index + 1)
                emit.emit("return (None, None, event, None)")
            elif op == _NOP:
                pass
            else:
                raise CompileError("unknown opcode 0x%02x" % op)

        last_op = uops[-1][0]
        if last_op < _JMP:
            # Instruction-limit fall-through exit.
            final_exit(entry + n * INSTRUCTION_SIZE, n, n - 1)
        return cb_index

    def _factory_source(
        self, emit, uses, n_slots: int, n_callbacks: int, region_members: int
    ) -> str:
        """Wrap emitted body lines in the factory preamble."""
        out = _Emitter()
        if region_members:
            out.lines.append("def _make(C, slots, callbacks, members):")
        else:
            out.lines.append("def _make(C, slots, callbacks):")
        out.emit("machine = C.machine", 1)
        out.emit("stats = C.stats", 1)
        for name in self._CAPTURE_NAMES:
            if name in uses:
                out.emit("%s = C.%s" % (name, name), 1)
        if "ic" in uses:
            # The polymorphic indirect inline cache: [generation seen at
            # last use, MRU-first chain of (target, resident) pairs,
            # overflow table of every (target -> resident) the site has
            # resolved].  One cell per closure (a trace has at most one
            # indirect exit, and only a region's last member can own
            # one), fresh per factory binding so a run never inherits
            # another run's residents.
            out.emit("ic = [-1, [], {}]", 1)
        for i in range(n_slots):
            out.emit("slot%d = slots[%d]" % (i, i), 1)
        for i in range(n_callbacks):
            out.emit("cb%d = callbacks[%d]" % (i, i), 1)
        # Junction guards compare successors by identity; the head
        # (members[0]) is entered by the caller and never referenced.
        for i in range(1, region_members):
            out.emit("m%d = members[%d]" % (i, i), 1)
        out.emit("def run():", 1)
        out.emit("r = machine.registers")
        out.lines.extend(emit.lines)
        out.emit("return run", 1)
        return out.source()

    def _emit_indirect_exit(
        self, emit: _Emitter, uses: set, translated, final_name
    ) -> None:
        """Terminator through the indirect-target resolver.

        Mirrors the interpreted dispatcher: an INDIRECT final exit pays
        the hash-lookup charge and returns to the dispatcher slot-less;
        any other final-exit kind (not reachable for JR/RET/CALLR traces
        built by the selector, but persisted caches are data) leaves via
        the final slot.

        The INDIRECT path carries a polymorphic inline cache (Pin's
        indirect-branch chaining): an MRU-first chain of up to
        :data:`~repro.vm.stats.IC_CHAIN_DEPTH` ``(target, resident)``
        predictions, validated wholesale against the code-cache
        generation.  A front hit returns immediately; a deeper hit is
        promoted to the front (move-to-front keeps an alternating pair
        at depth 1 and a rotating triple at depth 2); a generation
        advance discards the whole chain — an evicted trace can never
        be dispatched; a miss resolves through the translation map and
        refills the front, truncating the chain to its depth bound.

        Behind the chain sits the **megamorphic overflow tier**: a
        per-site hash table remembering every ``(target -> resident)``
        the site has resolved, filled at each miss and validated by the
        same generation word as the chain.  A target that cycled out of
        the bounded chain (e.g. an 8-way dispatch-table rotation over a
        depth-4 chain) dispatches from the table without a
        translation-map lookup and *without reordering the chain* — the
        MRU entries stay reserved for the truly-hot targets.

        Cycle charges and ``indirect_resolutions`` are identical on
        every path — all model the same resolver work — so the
        interpreted oracle stays bit-identical; only the host-side
        :class:`~repro.vm.stats.ICStats` counters see the difference.
        """
        final = translated.final_slot
        if final is not None and final.exit.kind == ExitKind.INDIRECT:
            uses.update(("ic", "ics", "cache", "cache_lookup"))
            lit = _flt(self.cost.indirect_resolution)
            emit.emit("stats.translated_exec_cycles += %s" % lit)
            emit.emit("stats._total += %s" % lit)
            emit.emit("stats.indirect_resolutions += 1")
            emit.emit("g = cache.generation")
            emit.emit("e = ic[1]")
            emit.emit("if ic[0] == g:")
            emit.emit("if e and e[0][0] == target:", 3)
            emit.emit("ics.hits += 1", 4)
            emit.emit("ics.depth_hits[0] += 1", 4)
            emit.emit("return (target, None, None, e[0][1])", 4)
            emit.emit("for i in range(1, len(e)):", 3)
            emit.emit("p = e[i]", 4)
            emit.emit("if p[0] == target:", 4)
            emit.emit("del e[i]", 5)
            emit.emit("e.insert(0, p)", 5)
            emit.emit("ics.hits += 1", 5)
            emit.emit("ics.promotions += 1", 5)
            emit.emit("ics.depth_hits[i] += 1", 5)
            emit.emit("return (target, None, None, p[1])", 5)
            emit.emit("p = ic[2].get(target)", 3)
            emit.emit("if p is not None:", 3)
            emit.emit("ics.overflow_hits += 1", 4)
            emit.emit("return (target, None, None, p)", 4)
            emit.emit("else:")
            emit.emit("if e or ic[2]:", 3)
            emit.emit("del e[:]", 4)
            emit.emit("ic[2].clear()", 4)
            emit.emit("ics.resets += 1", 4)
            emit.emit("ic[0] = g", 3)
            emit.emit("ics.misses += 1")
            emit.emit("hit = cache_lookup(target)")
            emit.emit("if hit is not None:")
            emit.emit("e.insert(0, (target, hit))", 3)
            emit.emit("if len(e) > %d:" % IC_CHAIN_DEPTH, 3)
            emit.emit("del e[%d:]" % IC_CHAIN_DEPTH, 4)
            emit.emit("ic[2][target] = hit", 3)
            emit.emit("ics.fills += 1", 3)
            emit.emit("return (target, None, None, hit)")
        elif final_name is None:
            emit.emit("return (target, None, None, None)")
        else:
            emit.emit(
                "return (target, %s, None, %s.linked_resident)"
                % (final_name, final_name)
            )
