"""The DBI engine: compilation unit + dispatcher + emulation glue.

:class:`Engine` runs a loaded process entirely under VM control, the way
Pin does: *every* instruction executes from the software code cache, never
from the original image.  The run loop is the dispatcher:

1. look the current original PC up in the translation map;
2. on a miss, enter the VM (cost), select and translate a trace (cost),
   insert and link it;
3. execute the trace out of the code cache (translated-inst costs,
   analysis-callback costs);
4. leave the trace through one of its exits — directly to a linked trace
   (free), through the indirect-target resolver (hash-lookup cost), via
   syscall emulation, or back to the VM for a missing target.

A persistence session (see :mod:`repro.persist.manager`) can be attached;
the engine calls its hooks at process start (cache lookup + preload), at
code-cache flush, and at exit (cache generation / accumulation), exactly
the integration points the paper describes in §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.instructions import INSTRUCTION_SIZE
from repro.loader.linker import LoadedProcess
from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.machine.cpu import (
    ExecutionContext,
    Machine,
    MachineFault,
    apply_module_event,
    apply_thread_event,
)
from repro.vm.client import AnalysisContext, NullTool, Tool, ToolAccounting
from repro.vm.codecache import (
    CacheFull,
    CodeCache,
    DEFAULT_CODE_POOL_BYTES,
    DEFAULT_DATA_POOL_BYTES,
)
from repro.vm.compile import (
    REGION_FUSE_THRESHOLD,
    REGION_MAX_MEMBERS,
    TraceCompiler,
    UNCOMPILABLE,
)
from repro.vm.compilequeue import CompileQueue
from repro.vm.stats import ICStats, LinkStats, QueueStats, VMStats
from repro.vm.trace import ExitKind, TraceSelector
from repro.vm.translator import TranslatedTrace, Translator
from repro.isa.opcodes import Opcode

#: Opcode-range bounds used by the dispatcher's hot loop.
_COND_LO = int(Opcode.BEQ)
_COND_HI = int(Opcode.BGE)
_UNCOND_LO = int(Opcode.JMP)
_HALT_OP = int(Opcode.HALT)
_MEMORY_OPS = (int(Opcode.LD), int(Opcode.ST))

#: Version stamp of the run-time system.  Part of every persistent-cache
#: key: "code and the data structures are specific to a version of the
#: system and cannot be utilized across versions".  Bump on any change
#: to translation *or* to the compiled tier's closure codegen — the
#: compiled-body sidecar (repro.persist.sidecar) revives host code
#: objects keyed on this stamp, so stale codegen must miss wholesale.
VM_VERSION = "repro-dbi-1.4.0"


class EngineError(Exception):
    """Raised for unrecoverable engine conditions (e.g. trace > pool)."""


def _persistence_failure_types() -> tuple:
    """Exception types that must degrade persistence, not kill the run."""
    from repro.persist.cachefile import CacheFileError

    return (CacheFileError, OSError)


@dataclass
class VMConfig:
    """Engine tunables."""

    max_trace_insts: int = 24
    code_pool_bytes: int = DEFAULT_CODE_POOL_BYTES
    data_pool_bytes: int = DEFAULT_DATA_POOL_BYTES
    vm_version: str = VM_VERSION
    max_instructions: int = 200_000_000
    #: Retain translations of unloaded modules and re-register them when
    #: the module reloads at the same base (module-aware translation,
    #: after Li et al.'s IA32EL work the paper discusses in §5).
    module_retention: bool = True
    #: How translated traces execute: ``"compiled"`` specializes each
    #: trace into a Python closure (repro.vm.compile) on its first
    #: execution; ``"interpreted"`` walks uops through step_uop.  The
    #: tiers are observably identical — same output, exit status, and
    #: VMStats to the bit (see docs/performance.md); interpreted is the
    #: reference oracle, compiled the fast default.
    dispatch_mode: str = "compiled"
    #: Chain compiled closures directly: a patched or IC-predicted exit
    #: hands the successor's closure to the engine's trampoline instead
    #: of re-entering the dispatcher, and stable hot chains fuse into
    #: superblock region closures (repro.vm.compile).  Host-side only —
    #: simulated ``VMStats`` are bit-identical either way; disabling
    #: reverts to the one-closure-call-per-dispatch behavior (the bench
    #: baseline for the trace_linking family).
    trace_linking: bool = True
    #: When a cold trace's closure is built: ``"sync"`` (default)
    #: compiles on the execution path at first entry — the bit-exact
    #: baseline; ``"background"`` hands cold traces to a bounded compile
    #: queue (repro.vm.compilequeue) and executes them **interpreted**
    #: until the finished closure swaps in at a later entry, taking host
    #: ``compile()`` off the time-to-first-output path.  Host-side
    #: scheduling only — the tiers are observably identical per
    #: execution, so ``VMStats`` is bit-identical across compile modes.
    compile_mode: str = "sync"
    #: Bound on queued-but-unstarted background compiles; a full queue
    #: degrades the enqueue to a synchronous compile (never drops).
    compile_queue_depth: int = 128
    #: Background compile worker threads.  One is the right default on
    #: CPython: workers only overlap with execution at GIL switch
    #: granularity, and a single worker already drains the startup
    #: backlog off the first-output path.
    compile_workers: int = 1


@dataclass
class VMRunResult:
    """Everything observable from one run under the engine."""

    exit_status: int
    output: bytes
    instructions: int
    stats: VMStats
    tool_accounting: ToolAccounting
    cache_traces: int
    cache_code_bytes: int
    cache_data_bytes: int
    persistence_report: Dict[str, object] = field(default_factory=dict)
    #: Indirect-branch inline-cache accounting from the compiled tier
    #: (all-zero under interpreted dispatch).  Host-side only — kept
    #: outside :class:`VMStats` so the tiers' stats stay bit-identical.
    ic_stats: ICStats = field(default_factory=ICStats)
    #: Cross-trace linking / superblock-region accounting from the
    #: compiled tier (all-zero under interpreted dispatch or with
    #: ``trace_linking`` off).  Host-side only, like ``ic_stats``.
    link_stats: LinkStats = field(default_factory=LinkStats)
    #: Background compile-queue accounting (all-zero under
    #: ``compile_mode="sync"`` or interpreted dispatch).  Host-side
    #: only, like ``ic_stats`` and ``link_stats``.
    queue_stats: QueueStats = field(default_factory=QueueStats)

    @property
    def total_cycles(self) -> float:
        return self.stats.total_cycles


class Engine:
    """A Pin-like run-time compilation system for the synthetic machine."""

    def __init__(
        self,
        tool: Optional[Tool] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        config: Optional[VMConfig] = None,
        persistence=None,
    ):
        self.tool = tool or NullTool()
        self.cost_model = cost_model
        self.config = config or VMConfig()
        self.persistence = persistence
        #: Set by the degradation backstop when a storage failure escapes
        #: the session: the rest of the run executes JIT-only.
        self._persistence_disabled = False
        #: Per-run dispatch state (rebuilt by every run()).
        self._compiler: Optional[TraceCompiler] = None
        self._compile_queue: Optional[CompileQueue] = None
        self._analysis_context: Optional[AnalysisContext] = None

    # -- public API -------------------------------------------------------------

    def _persist_hook(self, hook: str, stats: VMStats, *args) -> None:
        """Invoke one persistence-session hook with a degradation backstop.

        The session already downgrades itself on storage failures; this
        wrapper is the engine's last line of defense — any storage error
        that still escapes detaches persistence for the rest of the run
        (JIT-only) instead of raising through the dispatcher.  The
        session object stays attached so its report reaches the run
        result with the degradation recorded.
        """
        session = self.persistence
        if session is None or self._persistence_disabled:
            return
        try:
            getattr(session, hook)(self, *args)
        except _persistence_failure_types() as exc:
            self._persistence_disabled = True
            stats.persistence_storage_errors += 1
            stats.persistence_degraded = 1
            report = getattr(session, "report_data", None)
            if report is not None:
                report.fallback_jit_only = True
                if not getattr(report, "degraded_reason", ""):
                    report.degraded_reason = "%s: %s" % (hook, exc)

    def run(
        self,
        process: LoadedProcess,
        args: Tuple[int, ...] = (),
        machine: Optional[Machine] = None,
    ) -> VMRunResult:
        """Execute ``process`` to completion under the VM."""
        dispatch_mode = self.config.dispatch_mode
        if dispatch_mode not in ("interpreted", "compiled"):
            raise EngineError(
                "unknown dispatch_mode %r (expected 'interpreted' or"
                " 'compiled')" % (dispatch_mode,)
            )
        compile_mode = self.config.compile_mode
        if compile_mode not in ("sync", "background"):
            raise EngineError(
                "unknown compile_mode %r (expected 'sync' or"
                " 'background')" % (compile_mode,)
            )
        machine = machine or Machine(process)
        machine.set_args(*args)
        stats = VMStats()
        machine.os_state.clock = lambda: stats.total_cycles
        cache = CodeCache(
            self.config.code_pool_bytes, self.config.data_pool_bytes,
            page_tracker=machine.executed_code_pages,
        )
        selector = TraceSelector(machine.fetch, self.config.max_trace_insts)
        translator = Translator(self.cost_model, self.tool)
        context = ExecutionContext(machine)
        accounting = ToolAccounting()
        # One mutable analysis context per run, updated in place before
        # every callback (no per-call allocation on the hot path).
        self._analysis_context = AnalysisContext(
            address=0, trace_entry=0, index=0, machine=machine
        )
        ic_stats = ICStats()
        link_stats = LinkStats()
        self._compiler = (
            TraceCompiler(
                machine, stats, accounting, self.cost_model,
                self._analysis_context, code_cache=cache,
                ic_stats=ic_stats, link_stats=link_stats,
                max_instructions=self.config.max_instructions,
            )
            if dispatch_mode == "compiled"
            else None
        )
        # Background mode only applies to the compiled tier (interpreted
        # dispatch never compiles anything to defer).
        self._compile_queue = (
            CompileQueue(
                self._compiler, cache,
                depth=self.config.compile_queue_depth,
                workers=self.config.compile_workers,
            )
            if self._compiler is not None and compile_mode == "background"
            else None
        )

        self._persistence_disabled = False
        self._persist_hook("on_process_start", stats, machine, cache, stats)

        def on_code_write(addr: int, _cache=cache, _stats=stats) -> None:
            # Self-modifying code: drop every trace overlapping the
            # modified 512-byte page (paper §3.2.1's invalidation).
            from repro.machine.cpu import CODE_PAGE_SHIFT

            start = (addr >> CODE_PAGE_SHIFT) << CODE_PAGE_SHIFT
            evicted = _cache.evict_range(start, start + (1 << CODE_PAGE_SHIFT))
            if evicted:
                _stats.smc_invalidations += len(evicted)
                _stats.charge_dispatch(self.cost_model.smc_invalidation)

        machine.code_write_listeners.append(on_code_write)

        # Module-aware translation: unloading a module invalidates its
        # traces (stash them); reloading at the same base re-registers
        # them without retranslation.
        module_stash: Dict[Tuple[str, int], list] = {}

        def on_module_event(kind: str, mapping,
                            _cache=cache, _stats=stats) -> None:
            key = (mapping.image.path, mapping.base)
            if kind == "unload":
                _stats.module_unloads += 1
                evicted = _cache.evict_range(mapping.base, mapping.end)
                # Traces of self-modified pages must not survive into the
                # module's next (pristine) incarnation.
                from repro.machine.cpu import CODE_PAGE_SHIFT

                modified = machine.modified_code_pages
                clean = [
                    resident for resident in evicted
                    if not any(
                        page in modified
                        for page in range(
                            resident.trace.entry >> CODE_PAGE_SHIFT,
                            ((resident.trace.end - 1) >> CODE_PAGE_SHIFT) + 1,
                        )
                    )
                ] if modified else evicted
                if self.config.module_retention:
                    module_stash[key] = clean
                self._persist_hook(
                    "on_module_unload", _stats, machine, _stats, mapping, clean
                )
                return
            _stats.module_loads += 1
            self._persist_hook(
                "on_module_load", _stats, machine, _cache, _stats, mapping
            )
            for stashed in module_stash.pop(key, ()):
                if stashed.entry in _cache:
                    continue
                for slot in stashed.links:
                    slot.unlink()  # re-link against current residents
                try:
                    _cache.insert(stashed)
                except CacheFull:
                    break
                _stats.module_traces_retained += 1
                _stats.charge_dispatch(self.cost_model.module_reattach)

        machine.module_listeners.append(on_module_event)

        self.tool.on_start(machine)

        cost = self.cost_model
        exit_status = 0
        pc: Optional[int] = process.entry_address
        # Program start: control begins inside the VM.
        stats.charge_dispatch(cost.vm_entry)
        stats.vm_entries += 1
        arrived_resident: Optional[TranslatedTrace] = None

        budget = self.config.max_instructions
        try:
            while pc is not None:
                if stats.instructions_executed >= budget:
                    raise MachineFault("instruction budget exhausted", pc)
                if arrived_resident is not None:
                    translated = arrived_resident
                    arrived_resident = None
                else:
                    translated = cache.lookup(pc)
                    if translated is None:
                        translated = self._translate_at(
                            pc, machine, selector, translator, cache, stats
                        )
                pc, exit_status, arrived_resident = self._execute_trace(
                    translated, context, machine, cache, stats, accounting,
                    exit_status
                )
                if (
                    pc is not None
                    and arrived_resident is None
                    and pc in cache
                ):
                    # The exit found its target resident (indirect hit or
                    # post-emulation resume): no VM round-trip needed.
                    arrived_resident = cache.lookup(pc)
                elif pc is not None and arrived_resident is None:
                    stats.charge_dispatch(cost.vm_entry)
                    stats.vm_entries += 1
        finally:
            # Worker threads never outlive their run, whatever ends it.
            if self._compile_queue is not None:
                self._compile_queue.shutdown()

        self.tool.on_exit(machine, exit_status)

        # Mirror cache-level region teardown (evict/SMC/flush) into the
        # run's link accounting: the cache has no LinkStats reference.
        link_stats.region_invalidations = cache.stats.region_invalidations

        persistence_report: Dict[str, object] = {}
        if self.persistence is not None:
            self._persist_hook("on_exit", stats, machine, cache, stats)
            persistence_report = self.persistence.report()

        result = VMRunResult(
            exit_status=exit_status,
            output=bytes(machine.os_state.output),
            instructions=stats.instructions_executed,
            stats=stats,
            tool_accounting=accounting,
            cache_traces=len(cache),
            cache_code_bytes=cache.code_used,
            cache_data_bytes=cache.data_used,
            persistence_report=persistence_report,
            ic_stats=ic_stats,
            link_stats=link_stats,
            queue_stats=(
                self._compile_queue.stats
                if self._compile_queue is not None
                else QueueStats()
            ),
        )
        if self.persistence is not None and hasattr(
            self.persistence, "on_result"
        ):
            # Post-run tap for the record/replay tier: the recording
            # session snapshots the finished result into its log; replay
            # verifies the log ran dry.  Runs after the VMRunResult is
            # built (the baseline needs it) and re-snapshots the report
            # so record/replay outcomes reach the caller.
            self._persist_hook("on_result", stats, result)
            result.persistence_report = self.persistence.report()
        return result

    # -- compilation -------------------------------------------------------------

    def _translate_at(
        self,
        pc: int,
        machine: Machine,
        selector: TraceSelector,
        translator: Translator,
        cache: CodeCache,
        stats: VMStats,
    ) -> TranslatedTrace:
        """Select, translate, insert and link the trace starting at ``pc``."""
        mapping = machine.process.image_at(pc)
        image_path = mapping.image.path if mapping is not None else ""
        image_base = mapping.base if mapping is not None else 0
        trace = selector.select(pc, image_path=image_path, image_base=image_base)
        result = translator.translate(trace)
        stats.charge_translation(result.compile_cycles)
        stats.traces_translated += 1
        stats.record_translation_event(pc)
        stats.translated_bytes_by_image[image_path] = (
            stats.translated_bytes_by_image.get(image_path, 0) + trace.size
        )
        stats.trace_identities.add((image_path, pc - image_base, trace.size))
        translated = result.translated
        try:
            patches = cache.insert(translated)
        except CacheFull:
            self._persist_hook("on_cache_flush", stats, machine, cache, stats)
            stats.charge_dispatch(self.cost_model.cache_flush)
            stats.cache_flushes += 1
            cache.flush()
            try:
                patches = cache.insert(translated)
            except CacheFull as exc:
                raise EngineError(
                    "trace at 0x%x larger than the code cache pools" % pc
                ) from exc
        stats.link_patches += patches
        stats.charge_dispatch(patches * self.cost_model.link_patch)
        return translated

    # -- dispatch / trace execution -----------------------------------------------

    def _execute_trace(
        self,
        translated: TranslatedTrace,
        context: ExecutionContext,
        machine: Machine,
        cache: CodeCache,
        stats: VMStats,
        accounting: ToolAccounting,
        exit_status: int,
    ) -> Tuple[Optional[int], int, Optional[TranslatedTrace]]:
        """Run one trace out of the code cache.

        Returns ``(next_pc, exit_status, next_resident)`` where
        ``next_resident`` is the already-linked next trace when the exit
        was a patched direct link (control never left the cache).

        Two tiers execute the trace body (identically — see
        docs/performance.md): the compiled tier runs the trace's
        specialized closure, built lazily on first execution; the
        interpreted tier below is the reference oracle.  A preloaded
        persistent trace arrives without a closure and compiles on its
        first execution here — the same event its demand-load is charged
        to, so persistence and compilation compose without any new
        simulated cost.
        """
        cost = self.cost_model
        if translated.from_persistent and not translated.demand_loaded:
            # Demand-page the persisted trace + its data structures.
            stats.charge_persistence(
                cost.pcache_trace_load + cost.pcache_meta_load
            )
            translated.demand_loaded = True
        translated.executions += 1

        compiler = self._compiler
        if compiler is not None:
            queue = self._compile_queue
            body = translated.compiled_body
            if body is None:
                if queue is not None:
                    # Background mode: enqueue (or swap in a finished
                    # body).  None means still pending — execute the
                    # trace interpreted this time; the tiers are
                    # bit-identical per execution, so mixing is safe.
                    body = queue.poll(translated)
                else:
                    body = compiler.compile(translated)
            if body is not None and body is not UNCOMPILABLE:
                if not self.config.trace_linking:
                    # PR-5 behavior: one closure call per dispatch.
                    next_pc, slot, event, resident = body()
                    if event is not None:
                        return self._handle_syscall_exit(
                            event, next_pc, machine, stats, exit_status
                        )
                    if slot is not None:
                        return self._leave_via_slot(
                            slot, next_pc, cache, stats, exit_status
                        )
                    return next_pc, exit_status, resident
                # The chain trampoline: while the exit hands back an
                # already-resident successor (patched direct link or IC
                # prediction), call its closure immediately — control
                # never re-enters the dispatch loop.  Simulated charges
                # are untouched: a linked exit was already free, and the
                # demand-load/execution bookkeeping below mirrors this
                # method's own preamble exactly.
                links = compiler.link_stats
                budget = self.config.max_instructions
                cur = translated
                while True:
                    next_pc, slot, event, resident = body()
                    if event is not None:
                        return self._handle_syscall_exit(
                            event, next_pc, machine, stats, exit_status
                        )
                    if resident is None:
                        break
                    if stats.instructions_executed >= budget:
                        # Hand the resident back: the dispatch loop's
                        # budget check raises at exactly the pc the
                        # interpreted tier would have faulted at.
                        return next_pc, exit_status, resident
                    next_body = resident.compiled_body
                    if next_body is None and queue is None:
                        next_body = compiler.compile(resident)
                    if next_body is None or next_body is UNCOMPILABLE:
                        # Uncompilable successor, or (background mode)
                        # its body does not exist yet: bounce back to
                        # the dispatch loop, whose preamble redoes the
                        # demand-load/executions bookkeeping and polls
                        # the queue / runs the resident interpreted (no
                        # vm_entry charge on the arrived_resident path —
                        # same simulated cost as continuing the chain).
                        links.link_bounces += 1
                        return next_pc, exit_status, resident
                    if resident.from_persistent and not resident.demand_loaded:
                        stats.charge_persistence(
                            cost.pcache_trace_load + cost.pcache_meta_load
                        )
                        resident.demand_loaded = True
                    resident.executions += 1
                    if slot is not None:
                        links.link_direct_hops += 1
                        hops = slot.hop_count + 1
                        slot.hop_count = hops
                        if (
                            hops % REGION_FUSE_THRESHOLD == 0
                            # Only a final-exit hop can head or extend a
                            # chain; branch-taken side exits would walk
                            # nothing, so skip the call outright unless
                            # ``cur`` heads a region (the extension
                            # seam) — the driver re-checks precisely.
                            and (
                                slot is cur.final_slot
                                or cache.region_of(cur.entry) == cur.entry
                            )
                        ):
                            self._maybe_fuse(cur, slot, cache, compiler)
                    else:
                        links.link_ic_hops += 1
                    cur = resident
                    body = next_body
                # Unlinked/unresolved exit: back to the dispatch protocol.
                if slot is not None:
                    return self._leave_via_slot(
                        slot, next_pc, cache, stats, exit_status
                    )
                return next_pc, exit_status, None
            # Uncompilable trace — or its body is still pending in the
            # background compile queue: fall through to the interpreted
            # oracle (bit-identical per execution).

        trace = translated.trace
        uops = trace.uops
        entry = trace.entry
        n = len(uops)
        registers = machine.registers
        points_by_index = translated.points_by_index
        step_uop = context.step_uop
        acx = self._analysis_context
        index = 0
        steps = 0  # per-inst charges are batched at every exit point

        def flush_exec() -> None:
            stats.instructions_executed += steps
            stats.charge_exec(steps * cost.translated_inst)

        while True:
            if points_by_index:
                points = points_by_index.get(index)
                if points:
                    address = entry + index * INSTRUCTION_SIZE
                    for point in points:
                        effective = None
                        if point.wants_effective_address:
                            uop_ = uops[index]
                            if uop_[0] in _MEMORY_OPS:
                                effective = registers[uop_[2]] + uop_[4]
                        # The run's single mutable context, updated in
                        # place (callbacks must not retain it).
                        acx.address = address
                        acx.trace_entry = entry
                        acx.index = index
                        acx.effective_address = effective
                        point.callback(acx)
                        charge = cost.analysis_call + point.work_cycles
                        stats.charge_analysis(charge)
                        stats.analysis_calls += 1
                        accounting.record_call(point.label or "point", charge)

            uop = uops[index]
            pc_orig = entry + index * INSTRUCTION_SIZE
            next_pc, event = step_uop(uop, pc_orig)
            steps += 1
            op = uop[0]

            if event is not None and event.syscall is not None:
                flush_exec()
                return self._handle_syscall_exit(
                    event, next_pc, machine, stats, exit_status
                )

            # Opcode ranges: 0x30-0x33 conditional, >= 0x38 unconditional
            # (see repro.isa.opcodes); integer compares keep this loop hot.
            if _COND_LO <= op <= _COND_HI:
                if next_pc != pc_orig + INSTRUCTION_SIZE:
                    flush_exec()
                    slot = translated.branch_slots[index]
                    return self._leave_via_slot(
                        slot, next_pc, cache, stats, exit_status
                    )
                # Fall through, stays inside the trace.
            elif op >= _UNCOND_LO:
                flush_exec()
                if op == _HALT_OP:
                    return None, 0, None
                final = translated.final_slot
                if final is not None and final.exit.kind == ExitKind.INDIRECT:
                    stats.charge_exec(cost.indirect_resolution)
                    stats.indirect_resolutions += 1
                    return next_pc, exit_status, None
                return self._leave_via_slot(
                    final, next_pc, cache, stats, exit_status
                )

            index += 1
            if index >= n:
                # Instruction-limit fall-through exit.
                flush_exec()
                final = translated.final_slot
                return self._leave_via_slot(
                    final, next_pc, cache, stats, exit_status
                )

    def _maybe_fuse(self, cur, slot, cache, compiler) -> None:
        """Try to fuse the stable hot chain through ``slot`` into a
        superblock region.

        Called by the trampoline whenever a link's hop count crosses a
        multiple of :data:`~repro.vm.compile.REGION_FUSE_THRESHOLD`.
        ``cur`` is the trace whose closure just exited; the chain head is
        ``cur`` itself — either the hop went through ``cur``'s own final
        exit, or ``cur`` heads a region whose last member's final exit
        took the hop (the extension case: the region re-fuses with the
        proven-hot tail appended).  The walk follows final-exit links
        that are patched, consistent (``linked_entry`` == static target
        == successor entry) and hot, stopping at cycles, other regions'
        members, not-yet-demand-loaded persistent traces and
        uncompilable successors.  Failure is cheap and retried: counters
        keep climbing, so the next threshold crossing tries again.
        """
        links = compiler.link_stats
        if slot is not cur.final_slot:
            members = cache.region_members(cur.entry)
            if not members:
                return  # a branch-taken side exit never heads a chain
            last = cache.lookup(members[-1])
            if last is None or slot is not last.final_slot:
                return
        start = cur
        own_head = cache.region_of(start.entry)
        if own_head is not None and own_head != start.entry:
            # ``cur`` is a middle member of another region; fusing from
            # here would nest regions.
            return
        chain = [start]
        seen = {start.entry}
        node = start
        while len(chain) < REGION_MAX_MEMBERS:
            link = node.final_slot
            if link is None or not link.is_linkable:
                break
            nxt = link.linked_resident
            if (
                nxt is None
                or link.linked_entry != link.exit.target
                or nxt.entry != link.exit.target
                or nxt.entry in seen
            ):
                break
            if link.hop_count < REGION_FUSE_THRESHOLD - 1:
                break  # not yet proven hot (region-internal links froze
                # at threshold, so extension walks pass through them)
            next_head = cache.region_of(nxt.entry)
            if next_head is not None and next_head != start.entry:
                break  # belongs to a different region
            if nxt.from_persistent and not nxt.demand_loaded:
                break  # keep demand-load charges out of fused bodies
            next_body = nxt.compiled_body
            if next_body is None:
                next_body = compiler.compile(nxt)
            if next_body is UNCOMPILABLE:
                break
            chain.append(nxt)
            seen.add(nxt.entry)
            node = nxt
        if len(chain) < 2:
            links.fusion_aborts += 1
            return
        entries = [member.entry for member in chain]
        if tuple(entries) == cache.region_members(start.entry):
            return  # already fused to exactly this chain
        region_body = compiler.compile_region(chain)
        if region_body is None:
            links.fusion_aborts += 1
            return
        # Supersede any existing region at this head, then install: the
        # fused closure is the head's body, so every patched link and
        # translation-map hit into the head enters the region; middle
        # members keep their solo closures for middle entry.
        cache.invalidate_region_containing(start.entry)
        start.compiled_body = region_body
        cache.register_region(entries)
        links.regions_fused += 1

    def _handle_syscall_exit(
        self,
        event,
        next_pc: Optional[int],
        machine: Machine,
        stats: VMStats,
        exit_status: int,
    ) -> Tuple[Optional[int], int, Optional[TranslatedTrace]]:
        """Leave a trace through its SYSCALL/HALT exit (both tiers).

        The caller has already flushed the trace's exec charges; this
        applies the emulation charges and the syscall's machine-level
        effects (module load/unload, thread scheduling, signal delivery).
        """
        cost = self.cost_model
        stats.charge_emulation(cost.syscall_emulation)
        stats.syscalls_emulated += 1
        result = event.syscall
        if result.dlopen is not None or result.dlclose is not None:
            apply_module_event(machine, result)
            return next_pc, exit_status, None
        if result.exited or result.spawn is not None or result.yielded:
            # Thread-affecting syscalls: possibly switch threads
            # (deterministic cooperative scheduling) or end the
            # process when the last thread exits — which is also
            # the persistent-cache write-back point (§3.2.2).
            next_pc, status = apply_thread_event(machine, result, next_pc)
            if next_pc is None:
                return None, status, None
            return next_pc, exit_status, None
        if event.is_signal_delivery:
            stats.charge_emulation(cost.signal_emulation)
            stats.signals_emulated += 1
        # Trace ends at the syscall; resume through the map.
        return next_pc, exit_status, None

    def _leave_via_slot(
        self,
        slot,
        next_pc: int,
        cache: CodeCache,
        stats: VMStats,
        exit_status: int,
    ) -> Tuple[Optional[int], int, Optional[TranslatedTrace]]:
        """Exit a trace through a (possibly linked) direct slot.

        A patched link chains straight to the next trace: one attribute
        load (``linked_resident``, maintained by the code cache), no
        translation-map lookup.  Unlinked exits whose target is already
        resident take one VM round-trip to patch the link (lazy linking),
        after which they chain for free.
        """
        if slot is None:
            return next_pc, exit_status, None
        target = slot.linked_resident
        if target is not None:
            # Invariant: a linked_resident of a resident trace is itself
            # resident (eviction unlinks every incoming slot).
            return next_pc, exit_status, target
        if slot.is_linked:
            # Link patched by insert() before residents were cached, or
            # state revived from persistence: resolve and cache it.
            target = cache.lookup(slot.linked_entry)
            if target is not None:
                slot.linked_resident = target
                return next_pc, exit_status, target
            # Stale link (target evicted); fall back to the VM.
            slot.unlink()
        if slot.is_linkable:
            target = cache.lookup(slot.exit.target)
            if target is not None:
                cost = self.cost_model
                stats.charge_dispatch(cost.vm_entry + cost.link_patch)
                stats.vm_entries += 1
                stats.link_patches += 1
                slot.linked_entry = target.entry
                slot.linked_resident = target
                return next_pc, exit_status, target
        return next_pc, exit_status, None
