"""The compilation unit: turns selected traces into code-cache residents.

Translation does *not* transform application instructions (Pin "does not
attempt original program optimization"); it:

* re-encodes the trace's instructions into the code cache,
* materializes an *exit stub* per trace exit (the translated branch that
  either links directly to another trace or trampolines into the VM),
* injects the tool's instrumentation points as analysis-call stubs,
* computes per-instruction register liveness (Pin uses liveness to place
  instrumentation without spilling; here the liveness vectors are also the
  dominant "data structures" payload of Figure 9),
* sizes the per-trace metadata that the persistent cache must store.

The code expansion factors are explicit constants so the static
pre-translation ablation (paper §5: ~10x expansion offline vs. executed-only
persistent caching) measures real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.encoding import encode_all
from repro.isa.instructions import Instruction
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.machine.costs import CostModel
from repro.vm.client import InstrumentationPoint, PointKind, Tool
from repro.vm.trace import ExitKind, Trace, TraceExit

#: Encoded instructions emitted per exit stub (compare/branch + trampoline).
STUB_INSTS_PER_EXIT = 2
#: Encoded instructions emitted per instrumentation point (spill, call,
#: restore — the bridge into analysis code).
STUB_INSTS_PER_POINT = 3

# -- per-trace metadata footprint (bytes), the Figure 9 "data structures" --
#: C++ trace object: vtable, entry, image back-pointer, flags, chain hooks.
TRACE_OBJECT_BYTES = 112
#: Register-bindings record for the trace (paper: "register bindings").
REGISTER_BINDINGS_BYTES = 64
#: Liveness vector per instruction.
LIVENESS_BYTES_PER_INST = 8
#: Translation-map/address-table entry per instruction.
ADDR_TABLE_BYTES_PER_INST = 8
#: Incoming/outgoing link record per exit.
LINK_RECORD_BYTES = 56


@dataclass
class LinkSlot:
    """The mutable link state of one trace exit.

    ``linked_entry`` is the original entry address of the trace this exit
    has been patched to jump to directly, or None while the exit still
    trampolines into the VM.  ``linked_resident`` caches the resident
    trace object itself so a patched link is a single attribute load on
    the dispatch hot path — no translation-map lookup.  Invariant: when
    the owning trace is resident, ``linked_resident`` is either None or a
    trace that is itself still resident (eviction clears both fields of
    every incoming link; re-registration of stashed traces resets them).
    """

    exit: TraceExit
    linked_entry: Optional[int] = None
    linked_resident: Optional["TranslatedTrace"] = field(
        default=None, repr=False, compare=False
    )
    #: Chain-hotness profile: trampoline hops taken through this slot
    #: while patched (repro.vm.engine).  Host-side only — feeds the
    #: superblock-fusion threshold, never simulated accounting.  Reset
    #: on unlink (a re-formed link must re-prove stability); abandoned
    #: fusion attempts keep the count, so the next threshold multiple
    #: retries for free.
    hop_count: int = field(default=0, compare=False)

    def unlink(self) -> None:
        """Drop the patch: the exit trampolines into the VM again."""
        self.linked_entry = None
        self.linked_resident = None
        self.hop_count = 0

    @property
    def is_linked(self) -> bool:
        return self.linked_entry is not None

    @property
    def is_linkable(self) -> bool:
        """Static-target exits can be patched; indirect ones never are."""
        return self.exit.target is not None and self.exit.kind not in (
            ExitKind.SYSCALL,
            ExitKind.HALT,
        )


@dataclass
class TranslatedTrace:
    """A trace resident in the code cache."""

    trace: Trace
    cache_offset: int = 0  # offset within the code pool
    code_bytes: bytes = b""
    code_size: int = 0
    data_size: int = 0
    points: List[InstrumentationPoint] = field(default_factory=list)
    #: Points grouped by instruction index for the dispatcher's hot loop.
    points_by_index: Dict[int, List[InstrumentationPoint]] = field(
        default_factory=dict
    )
    liveness: List[int] = field(default_factory=list)
    links: List[LinkSlot] = field(default_factory=list)
    #: True when the trace came from a persistent cache, not translation.
    from_persistent: bool = False
    #: Persisted traces are demand-paged: the first execution pays the load.
    demand_loaded: bool = False
    executions: int = 0
    #: BRANCH_TAKEN link slots keyed by instruction index (dispatcher use).
    branch_slots: Dict[int, LinkSlot] = field(default_factory=dict)
    #: The terminator/fall-through link slot (always the last exit).
    final_slot: Optional[LinkSlot] = None
    #: The compiled-dispatch tier's specialized closure for this trace
    #: (repro.vm.compile), or None while not (or no longer) compiled.
    #: Holds the _UNCOMPILABLE sentinel when specialization failed and
    #: the interpreted tier must execute this trace.  Invalidated with
    #: the trace on eviction/flush; never persisted.
    compiled_body: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def invalidate_compiled(self) -> None:
        """Drop the compiled-tier closure (trace eviction/invalidation)."""
        self.compiled_body = None

    @property
    def entry(self) -> int:
        return self.trace.entry

    def link_for_exit(self, exit_index: int) -> LinkSlot:
        return self.links[exit_index]


def index_links(translated: TranslatedTrace) -> TranslatedTrace:
    """(Re)build the dispatcher's per-index link lookup structures."""
    translated.branch_slots = {
        slot.exit.index: slot
        for slot in translated.links
        if slot.exit.kind == ExitKind.BRANCH_TAKEN
    }
    translated.final_slot = translated.links[-1] if translated.links else None
    return translated


@dataclass
class TranslationResult:
    """A translated trace plus what it cost to produce."""

    translated: TranslatedTrace
    compile_cycles: float


#: (opcode, rd, rs1, rs2) -> (written_mask, read_mask).  The register
#: sets never depend on the immediate, so the key space is tiny and the
#: memo turns the dominant per-instruction liveness cost (two frozenset
#: constructions) into one dict probe.
_REG_MASKS: Dict[tuple, tuple] = {}
_REG_MASKS_CAP = 1 << 15


def _register_masks(inst: Instruction) -> tuple:
    key = (inst.opcode, inst.rd, inst.rs1, inst.rs2)
    masks = _REG_MASKS.get(key)
    if masks is None:
        written = 0
        for reg in inst.registers_written():
            written |= 1 << reg
        read = 0
        for reg in inst.registers_read():
            read |= 1 << reg
        if len(_REG_MASKS) >= _REG_MASKS_CAP:
            _REG_MASKS.clear()
        masks = _REG_MASKS[key] = (written, read)
    return masks


def compute_liveness(trace: Trace) -> List[int]:
    """Backward liveness over the trace; one register bitmask per inst.

    Live-out of the trace is conservatively all registers (control can
    leave to anywhere).  Within the trace:
    ``live_in = (live_out - written) | read``; additionally every
    side-exit keeps everything alive at its instruction, matching the
    conservative treatment a real translator applies at stub boundaries.
    """
    all_live = (1 << regs.NUM_REGISTERS) - 1
    exit_indices = {e.index for e in trace.exits}
    live = all_live
    result = [0] * len(trace.instructions)
    for index in range(len(trace.instructions) - 1, -1, -1):
        inst = trace.instructions[index]
        if index in exit_indices:
            live = all_live
        written, read = _register_masks(inst)
        live = (live & ~written) | read
        result[index] = live
    return result


# Stub building blocks (immutable, shared across all traces).
_NOP = ins.nop()
_JMP_DISPATCH = ins.jmp(0)

#: Pre-encoded stub fragments.  Stub shape is fixed per exit (movi of the
#: masked target + the dispatcher jump) and per point (NOP triple), so
#: stub emission is pure byte concatenation: no Instruction objects are
#: built and nothing is re-encoded on the translate path.  The bytes are
#: identical to encoding the equivalent instruction list (``encode_all``
#: is itself a concatenation of fixed-width packs).
_JMP_DISPATCH_BYTES = encode_all([_JMP_DISPATCH])
_POINT_STUB_BYTES = encode_all([_NOP] * STUB_INSTS_PER_POINT)

#: Per-target exit-stub bytes (movi+jmp), keyed by the masked target.
#: Targets repeat heavily across traces (shared call/return sites), so
#: the memo turns the dominant stub cost into one dict probe.  Keyed on
#: the literal value baked into the bytes — addresses cannot stale.
_EXIT_STUB_MEMO: Dict[int, bytes] = {}
_EXIT_STUB_MEMO_CAP = 1 << 15


def _exit_stub_bytes(target: int) -> bytes:
    blob = _EXIT_STUB_MEMO.get(target)
    if blob is None:
        if len(_EXIT_STUB_MEMO) >= _EXIT_STUB_MEMO_CAP:
            _EXIT_STUB_MEMO.clear()
        blob = _EXIT_STUB_MEMO[target] = (
            encode_all([ins.movi(regs.AT, target)]) + _JMP_DISPATCH_BYTES
        )
    return blob


def _stub_code_bytes(trace: Trace, n_points: int) -> bytes:
    """Materialize the translated-code bytes for stubs, batched.

    The stubs are structural (the dispatcher interprets trace objects, not
    these bytes) but they are *real* encoded instructions whose size is
    what the code pool and the persistent cache store, so code-expansion
    numbers are honest.
    """
    parts = [
        _exit_stub_bytes((trace_exit.target or 0) & 0x7FFFFFFF)
        for trace_exit in trace.exits
    ]
    if n_points:
        parts.append(_POINT_STUB_BYTES * n_points)
    return b"".join(parts)


def _emit_stub_code(trace: Trace, n_points: int) -> List[Instruction]:
    """Instruction-object form of the stubs (tests/introspection only;
    the translate path uses the batched :func:`_stub_code_bytes`)."""
    stubs: List[Instruction] = []
    for trace_exit in trace.exits:
        target = trace_exit.target or 0
        # Trampoline: materialize target, jump to dispatcher.
        stubs.append(ins.movi(regs.AT, target & 0x7FFFFFFF))
        stubs.append(_JMP_DISPATCH)
    stubs.extend([_NOP] * (n_points * STUB_INSTS_PER_POINT))
    return stubs


class Translator:
    """Compiles traces, charging the cost model for the work."""

    def __init__(self, cost_model: CostModel, tool: Optional[Tool] = None):
        self.cost_model = cost_model
        self.tool = tool

    def translate(self, trace: Trace) -> TranslationResult:
        """Compile ``trace`` (with instrumentation, if a tool is present)."""
        points = list(self.tool.instrument_trace(trace)) if self.tool else []
        n_insts = len(trace.instructions)

        body = encode_all(trace.instructions)
        code_bytes = body + _stub_code_bytes(trace, len(points))

        # Liveness exists to place instrumentation without spilling; a
        # trace with no analysis points never consults it, so the
        # backward pass is skipped outright.  The *accounted* data size
        # below still charges the full per-instruction liveness vectors
        # (the persisted data blob zero-fills them), so pool occupancy
        # and Figure 9 are unchanged.
        liveness = compute_liveness(trace) if points else []
        data_size = (
            TRACE_OBJECT_BYTES
            + REGISTER_BINDINGS_BYTES
            + n_insts * (LIVENESS_BYTES_PER_INST + ADDR_TABLE_BYTES_PER_INST)
            + len(trace.exits) * LINK_RECORD_BYTES
        )

        points_by_index: Dict[int, List[InstrumentationPoint]] = {}
        for point in points:
            index = 0 if point.kind == PointKind.TRACE_ENTRY else point.index
            points_by_index.setdefault(index, []).append(point)

        translated = TranslatedTrace(
            trace=trace,
            code_bytes=code_bytes,
            code_size=len(code_bytes),
            data_size=data_size,
            points=points,
            points_by_index=points_by_index,
            liveness=liveness,
            links=[LinkSlot(exit=e) for e in trace.exits],
        )
        index_links(translated)

        cost = self.cost_model
        instrumentation_weight = sum(point.compile_weight for point in points)
        compile_cycles = (
            cost.trace_compile_fixed
            + n_insts * cost.trace_compile_per_inst
            + instrumentation_weight * cost.instrument_compile_per_inst
        )
        return TranslationResult(translated=translated, compile_cycles=compile_cycles)
