"""The run-time compilation system (Pin-like DBI engine)."""

from repro.vm.client import (
    AnalysisContext,
    InstrumentationPoint,
    NullTool,
    PointKind,
    Tool,
    ToolAccounting,
)
from repro.vm.codecache import (
    CacheFull,
    CodeCache,
    CodeCacheStats,
    DEFAULT_CODE_POOL_BYTES,
    DEFAULT_DATA_POOL_BYTES,
)
from repro.vm.engine import (
    Engine,
    EngineError,
    VMConfig,
    VMRunResult,
    VM_VERSION,
)
from repro.vm.stats import VMStats
from repro.vm.trace import (
    DEFAULT_MAX_TRACE_INSTS,
    ExitKind,
    Trace,
    TraceExit,
    TraceSelector,
)
from repro.vm.translator import (
    LinkSlot,
    TranslatedTrace,
    TranslationResult,
    Translator,
    compute_liveness,
    index_links,
)

__all__ = [
    "AnalysisContext",
    "CacheFull",
    "CodeCache",
    "CodeCacheStats",
    "DEFAULT_CODE_POOL_BYTES",
    "DEFAULT_DATA_POOL_BYTES",
    "DEFAULT_MAX_TRACE_INSTS",
    "Engine",
    "EngineError",
    "ExitKind",
    "InstrumentationPoint",
    "LinkSlot",
    "NullTool",
    "PointKind",
    "Tool",
    "ToolAccounting",
    "Trace",
    "TraceExit",
    "TraceSelector",
    "TranslatedTrace",
    "TranslationResult",
    "Translator",
    "VMConfig",
    "VMRunResult",
    "VMStats",
    "VM_VERSION",
    "compute_liveness",
    "index_links",
]
