"""Wall-clock benchmark harness for the two dispatch tiers.

Times *host* wall-clock seconds — not simulated cycles — for the same
workload families the cycle-level benchmarks regenerate from the paper:

* ``fig5a_gui``: GUI startup with a warm same-input persistent cache
  (the Figure 5(a) configuration), the headline configuration for the
  compiled dispatch tier: warm runs revive every trace from the
  persistent cache and spend their time executing, which is exactly
  what trace-compiled dispatch accelerates.
* ``fig2b_gui``: plain GUI startup, no persistence (Figure 2(b)).
* ``headline_spec``: the SPEC2K INT suite (Train inputs) plus the
  Oracle phases, no persistence.
* ``sidecar_cold_warm``: compiled-tier GUI startup against a warm trace
  database, cold host (factory memo cleared, sidecar disabled) vs. warm
  sidecar (factories revived from ``compiled-bodies.pcs``).  The gap is
  exactly the host ``compile()`` cost the sidecar removes from a fresh
  process; the report also carries the host-compile counts per mode.
* ``shared_store``: the cross-application configuration the paper's
  Figure 9/10 measures, one level up — database A (per app) runs cold
  and publishes its compiled bodies to a per-host shared store
  (:mod:`repro.persist.sharedstore`); database B, which never ran any
  workload, then runs its own cold start ``isolated`` (no shared store:
  every trace pays a host ``compile()``) vs. ``shared`` (bodies revived
  from the pool A warmed: zero host ``compile()``\\ s).  B runs
  read-only so every repetition measures a genuinely cold database.
* ``record_overhead``: plain GUI startup with vs. without a recording
  session attached (:mod:`repro.replay`).  Recording logs every
  completed syscall and scheduling decision; the acceptance criterion
  caps its wall-clock cost at 10% over the plain run, so capturing a
  session for later differential replay is always affordable.
* ``indirect_heavy``: indirect-branch-bound microcorpora (alternating
  two-target pair, rotating three-target cycle, megamorphic
  eight-target table), no persistence.  The compiled tier's win here is
  the polymorphic inline-cache chains at ``jr``/``callr``/``ret`` exits
  (:mod:`repro.vm.compile`); the report carries per-corpus IC
  hit/miss/depth counters so CI can assert the chains actually engage.
* ``trace_linking``: chain-heavy microcorpora (jmp relays and a
  branchy detour loop, :mod:`repro.workloads.chains`), no persistence.
  Both timed modes run the *compiled* tier: ``nolink`` disables the
  chain trampoline (``trace_linking=False``, the PR-5 one-closure-call
  baseline), ``linked`` enables direct-exit linking plus superblock
  fusion.  The report carries per-corpus link/region counters and an
  ``oracle_identical`` flag (linked runs compared field-for-field
  against the interpreted oracle) so the win is auditable: stable
  chains must show zero dispatcher bounces and fused regions.
* ``transparency``: the anti-instrumentation corpus
  (:mod:`repro.workloads.adversarial`) — self-checksumming readers, SMC
  churners (hot, region-fused, page-boundary-straddling), a clock
  probe, and dlopen/dlclose+SMC interleavings.  Timed modes are plain
  interpreted vs. compiled dispatch; the report's point is the extras:
  every workload compared field-for-field against the interpreted
  oracle under compiled, linked, and background-compile dispatch, the
  self-observing workloads compared byte-for-byte against the *native*
  oracle (``stale_reads`` counts mismatches — one stale code byte read
  via ``LD`` or one missed invalidation changes the folded output),
  per-churner ``smc_invalidations`` (must be nonzero), and a warm
  restart of the self-observing corpus over the sidecar, the shared
  per-host store, and the cache-server daemon (bit-identical output
  required — a persisted trace must not resurrect pre-SMC code).
* ``tiered_warmup``: the startup-heavy corpus
  (:mod:`repro.workloads.warmup`) cold (factory memo cleared per rep),
  synchronous vs. background compilation (``VMConfig.compile_mode``).
  The family's headline metric is *time-to-first-output* rather than
  total wall clock: background mode interprets cold traces while a
  compile queue builds their closures off-path, so the program reaches
  its first write without paying host ``compile()`` for startup code
  that runs once.  The report also carries a ``repro prewarm`` sweep
  over ``--jobs 1/2/4`` (cold-sweep wall clock per job count, core-aware
  monotonicity flag) and the warm-run host-compile count against the
  prewarmed stores (must be zero).

Every family also reports per-mode time-to-first-output
(``<mode>_ttfo_s``, minimum over probe repetitions, measured on one
representative workload of the family) and the contender/baseline ratio
(``ttfo_ratio_x``).  Programs that never write fall back to
time-to-exit, so the column is populated for every family.

Methodology: each family is timed as a full sweep (every workload in
the family, sequentially) under each mode.  Sweeps run ``warmup``
untimed repetitions first — standard JIT-benchmark practice, here
amortizing the host ``compile()`` of trace closures, which the factory
memo (:mod:`repro.vm.compile`) shares across runs exactly like the
paper's persistent code cache shares translations across executions —
then ``reps`` timed repetitions.  The headline score is the trimmed
mean (the highest rep dropped, since timing noise only inflates);
per-mode minima and the max-over-min spread are reported alongside so
a surprising headline can be sanity-checked against run-to-run noise
without rerunning, and the CLI's ``--check`` warns when a family's
spread exceeds its noise threshold.  Before timing, one run per mode is
compared field-for-field (output, exit status, every :class:`VMStats`
counter) so a reported speedup can never come from divergent
behavior.

The result dictionary is also written as ``BENCH_wallclock.json`` at
the repository root by :func:`run_wallclock` when ``out_path`` is given
(the CLI and the benchmark suite both do).  A selective run (``--family
X``) merges into the existing file instead of clobbering it: families
measured this invocation are refreshed, families measured by earlier
invocations are preserved, and the gate is recomputed over the merged
set — so a quick single-family rerun never erases the rest of the
recorded trajectory.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import shutil
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.vm.engine import VMConfig
from repro.workloads.harness import FirstOutputTimer, run_vm
from repro.workloads.gui import build_gui_suite
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.spec2k import build_suite

#: The acceptance gate: compiled dispatch must beat interpreted dispatch
#: by at least this factor (wall-clock) on the fig5a GUI workload.
GATE_WORKLOAD = "fig5a_gui"
GATE_THRESHOLD_X = 1.5

_MODES = ("interpreted", "compiled")


def _result_signature(result) -> tuple:
    """Everything observable about a run, for cross-tier comparison."""
    return (result.output, result.exit_status, vars(result.stats))


def _sweep_stats(samples: List[float]) -> Dict[str, float]:
    """Headline statistics for one mode's timed repetitions.

    ``min`` stays the headline (least-noise: host noise only ever
    inflates a rep).  The trimmed mean (highest rep dropped, given
    enough reps) and the max-over-min spread are reported alongside so
    a surprising headline is auditable against run-to-run noise.
    """
    ordered = sorted(samples)
    trimmed = ordered[:-1] if len(ordered) >= 3 else ordered
    return {
        "min_s": ordered[0],
        "trimmed_mean_s": sum(trimmed) / len(trimmed),
        "spread_pct": (
            100.0 * (ordered[-1] - ordered[0]) / ordered[0]
            if ordered[0] > 0 else 0.0
        ),
    }


def _measure_family(
    sweep: Callable[[str], list],
    warmup: int,
    reps: int,
    modes: Tuple[str, str] = _MODES,
) -> Dict[str, object]:
    """Time ``sweep`` under two modes; first mode is the baseline."""
    baseline, contender = modes
    signatures = {mode: [_result_signature(r) for r in sweep(mode)]
                  for mode in modes}
    identical = signatures[baseline] == signatures[contender]
    for _ in range(warmup):
        for mode in modes:
            sweep(mode)
    # Reps are interleaved (i, c, i, c, ...) so slow host-frequency /
    # load drift hits both modes equally instead of biasing whichever
    # mode happens to be timed last; the cycle collector is paused during
    # timed reps so its pauses cannot land in one mode's window.
    times: Dict[str, List[float]] = {mode: [] for mode in modes}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            for mode in modes:
                start = time.perf_counter()
                sweep(mode)
                times[mode].append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    stats = {mode: _sweep_stats(times[mode]) for mode in modes}
    family: Dict[str, object] = {
        "speedup_x": stats[baseline]["min_s"] / stats[contender]["min_s"],
        "speedup_trimmed_x": (
            stats[baseline]["trimmed_mean_s"]
            / stats[contender]["trimmed_mean_s"]
        ),
        "identical_results": identical,
    }
    for mode in modes:
        family["%s_s" % mode] = stats[mode]["min_s"]
        family["%s_trimmed_s" % mode] = stats[mode]["trimmed_mean_s"]
        family["%s_spread_pct" % mode] = stats[mode]["spread_pct"]
        family["reps_%s_s" % mode] = times[mode]
    return family


def _config(mode: str) -> VMConfig:
    return VMConfig(dispatch_mode=mode)


def _fig5a_gui_sweep(scratch_dir: str) -> Callable[[str], list]:
    """Warm same-input persistent-cache GUI startup (Figure 5(a))."""
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    databases = {}
    for name, app in ordered:
        db = CacheDatabase(os.path.join(scratch_dir, "fig5a-" + name))
        # Cold run populates the persistent cache (untimed setup).
        run_vm(app, "startup", persistence=PersistenceConfig(database=db),
               vm_config=_config("compiled"))
        databases[name] = db

    def sweep(mode: str) -> list:
        return [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(database=databases[name]),
                   vm_config=_config(mode))
            for name, app in ordered
        ]

    return sweep


def _fig2b_gui_sweep() -> Callable[[str], list]:
    """Plain GUI startup, no persistence (Figure 2(b))."""
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())

    def sweep(mode: str) -> list:
        return [run_vm(app, "startup", vm_config=_config(mode))
                for _name, app in ordered]

    return sweep


def _headline_spec_sweep() -> Callable[[str], list]:
    """SPEC2K INT Train sweep plus the Oracle phases, no persistence."""
    spec = sorted(build_suite().items())
    oracle = build_oracle()

    def sweep(mode: str) -> list:
        results = [run_vm(wl, "train", vm_config=_config(mode))
                   for _name, wl in spec]
        results.extend(run_vm(oracle, phase, vm_config=_config(mode))
                       for phase in PHASES)
        return results

    return sweep


def _sidecar_cold_warm_sweep(scratch_dir: str):
    """Cold vs. warm host-compile cost of the compiled-body sidecar.

    Both modes run the compiled tier against a warm per-app trace
    database, so no translation happens and the tiers' simulated work is
    identical.  ``cold`` clears the in-process factory memo and disables
    the sidecar before each sweep — every trace pays a fresh host
    ``compile()``, the first-run-of-a-new-process cost.  ``warm`` also
    clears the memo but revives every factory from the on-disk sidecar.
    The wall-clock gap is exactly the host-compile work the sidecar
    removes; the per-mode host-compile counts are reported so CI can
    assert the warm path performs zero host ``compile()`` calls.
    """
    from repro.vm.compile import clear_code_object_cache

    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    databases = {}
    for name, app in ordered:
        db = CacheDatabase(os.path.join(scratch_dir, "sidecar-" + name))
        # Cold run populates the trace cache and the sidecar (untimed).
        run_vm(app, "startup", persistence=PersistenceConfig(database=db),
               vm_config=_config("compiled"))
        databases[name] = db
    host_compiles = {"cold": 0, "warm": 0}

    def sweep(mode: str) -> list:
        clear_code_object_cache()
        results = [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(
                       database=databases[name],
                       sidecar=(mode == "warm"),
                   ),
                   vm_config=_config("compiled"))
            for name, app in ordered
        ]
        host_compiles[mode] = sum(
            r.persistence_report["sidecar_host_compiles"] for r in results
        )
        return results

    def extras() -> Dict[str, object]:
        return {
            "host_compiles_cold": host_compiles["cold"],
            "host_compiles_warm": host_compiles["warm"],
        }

    return sweep, extras


def _shared_store_sweep(scratch_dir: str):
    """Cross-database body reuse through the per-host shared store.

    Setup (untimed): for each GUI app, a donor database attached to one
    shared store runs the app cold, publishing every compiled body.  The
    timed sweeps then run each app against a *consumer* database that
    never saw any workload (empty, read-only, so it stays cold across
    repetitions): ``isolated`` detaches the store and pays every host
    ``compile()``; ``shared`` revives every body DB-A published.  The
    host-compile and shared-hit counts per mode are reported so CI can
    assert the cross-database warm path performs zero host
    ``compile()`` calls.
    """
    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.compile import clear_code_object_cache
    from repro.vm.engine import VM_VERSION

    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    shared = SharedBodyStore(
        os.path.join(scratch_dir, "shared-store"), vm_version=VM_VERSION
    )
    consumers = {}
    for name, app in ordered:
        donor = CacheDatabase(
            os.path.join(scratch_dir, "shared-donor-" + name),
            shared_store=shared,
        )
        clear_code_object_cache()
        # Donor cold run: populates its trace cache, its private
        # sidecar, and — the point — the shared per-host pool (untimed).
        run_vm(app, "startup", persistence=PersistenceConfig(database=donor),
               vm_config=_config("compiled"))
        consumers[name] = CacheDatabase(
            os.path.join(scratch_dir, "shared-consumer-" + name)
        )
    host_compiles = {"isolated": 0, "shared": 0}
    shared_hits = {"isolated": 0, "shared": 0}

    def sweep(mode: str) -> list:
        clear_code_object_cache()
        results = [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(
                       database=consumers[name],
                       readonly=True,
                       shared_store=(shared if mode == "shared" else None),
                   ),
                   vm_config=_config("compiled"))
            for name, app in ordered
        ]
        host_compiles[mode] = sum(
            r.persistence_report["sidecar_host_compiles"] for r in results
        )
        shared_hits[mode] = sum(
            r.persistence_report["shared_hits"] for r in results
        )
        return results

    def extras() -> Dict[str, object]:
        return {
            "host_compiles_isolated": host_compiles["isolated"],
            "host_compiles_shared": host_compiles["shared"],
            "shared_hits_shared": shared_hits["shared"],
        }

    return sweep, extras


def _fleet_worker(task: tuple) -> dict:
    """Pool entry point: one fleet member's warm session.

    Runs in a forked child.  The inherited in-memory code-object memo
    is cleared so every revive comes from a store — the child is a
    stand-in for a fresh process attaching to the per-host pool — and
    the shared-store spec string is resolved *here*, giving each member
    its own daemon connection (or its own flock-store fallback).
    """
    _mode, _index, db_dir, store_spec = task
    gc.disable()
    from repro.persist.daemon import resolve_shared_store
    from repro.vm.compile import clear_code_object_cache
    from repro.vm.engine import VM_VERSION

    clear_code_object_cache()
    apps, _store = build_gui_suite()
    name, app = sorted(apps.items())[0]
    result = run_vm(
        app, "startup",
        persistence=PersistenceConfig(
            database=CacheDatabase(db_dir),
            readonly=True,
            shared_store=resolve_shared_store(store_spec, VM_VERSION),
        ),
        vm_config=_config("compiled"),
    )
    report = result.persistence_report
    return {
        "output": result.output,
        "exit_status": result.exit_status,
        "stats": vars(result.stats),
        "host_compiles": report["sidecar_host_compiles"],
        "shared_hits": report["shared_hits"],
        "transport": report["shared_transport"],
    }


def _payload_result(payload: dict):
    """Rehydrate a worker payload into a ``_result_signature``-able
    shape (the signature reads ``output``/``exit_status``/``stats``)."""
    import types

    return types.SimpleNamespace(
        output=payload["output"],
        exit_status=payload["exit_status"],
        stats=types.SimpleNamespace(**payload["stats"]),
    )


def _payload_signature(payload: dict) -> tuple:
    return _result_signature(_payload_result(payload))


def _lookup_latencies(store, digests, passes: int = 3) -> List[float]:
    """Per-lookup wall clock (µs) over ``passes`` sweeps of ``digests``.

    Multiple passes are the point of the comparison: the flock store
    pays a ``stat`` on *every* pass (its revalidation is per-lookup),
    while the daemon client pays one RPC per shard prefix on the first
    pass and serves later passes from its prefix cache — the hot-shard
    index made client-side.
    """
    samples: List[float] = []
    for _ in range(passes):
        for digest in digests:
            start = time.perf_counter_ns()
            store.lookup(digest)
            samples.append((time.perf_counter_ns() - start) / 1000.0)
    return samples


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def _fleet_warmup_sweep(scratch_dir: str):
    """A fleet of warm sessions against one per-host pool: daemon vs
    flock transport.

    Setup (untimed): a donor database runs the first GUI app cold,
    publishing every compiled body to a shared store, and an in-process
    :class:`~repro.persist.cacheserver.CacheServer` starts on that
    store.  Each timed sweep then forks ``REPRO_FLEET_SESSIONS``
    (default 8) real processes, each a never-warmed read-only consumer
    database attaching to the pool — over the flock files (``flock``
    mode) or over the daemon socket (``daemon`` mode).  Both modes must
    be bit-identical and compile nothing; the daemon's win is the
    lookup path, reported as p50/p99 per-lookup latency in the extras
    alongside a fallback probe (a ``daemon://`` session against the
    stopped daemon must silently produce the flock result) and a final
    fsck.
    """
    import multiprocessing

    from repro.persist.cacheserver import CacheServer
    from repro.persist.daemon import DaemonBackedStore
    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.compile import clear_code_object_cache
    from repro.vm.engine import VM_VERSION

    try:
        fleet = max(1, int(os.environ.get("REPRO_FLEET_SESSIONS", "8")))
    except ValueError:
        fleet = 8
    store_dir = os.path.join(scratch_dir, "fleet-store")
    shared = SharedBodyStore(store_dir, vm_version=VM_VERSION)
    apps, _store = build_gui_suite()
    name, app = sorted(apps.items())[0]
    donor = CacheDatabase(
        os.path.join(scratch_dir, "fleet-donor"), shared_store=shared
    )
    clear_code_object_cache()
    run_vm(app, "startup", persistence=PersistenceConfig(database=donor),
           vm_config=_config("compiled"))
    server = CacheServer(store_dir, vm_version=VM_VERSION)
    server.start()
    context = multiprocessing.get_context("fork")
    specs = {"flock": store_dir, "daemon": "daemon://" + store_dir}
    host_compiles = {"flock": 0, "daemon": 0}
    shared_hits = {"flock": 0, "daemon": 0}
    transports: Dict[str, str] = {}
    reference_sig: Dict[str, tuple] = {}

    def sweep(mode: str) -> list:
        tasks = [
            (mode, index,
             os.path.join(scratch_dir, "fleet-%s-%d" % (mode, index)),
             specs[mode])
            for index in range(fleet)
        ]
        pool = context.Pool(processes=fleet)
        try:
            payloads = pool.map(_fleet_worker, tasks)
        finally:
            pool.close()
            pool.join()
        host_compiles[mode] = sum(p["host_compiles"] for p in payloads)
        shared_hits[mode] = sum(p["shared_hits"] for p in payloads)
        transports[mode] = payloads[0]["transport"]
        reference_sig[mode] = _payload_signature(payloads[0])
        return [_payload_result(p) for p in payloads]

    def extras() -> Dict[str, object]:
        digests = [digest for digest, _record in shared.iter_entries()]
        flock_lat = _lookup_latencies(
            SharedBodyStore(store_dir, vm_version=VM_VERSION), digests
        )
        client = DaemonBackedStore(store_dir, VM_VERSION)
        daemon_alive = client.transport == "daemon"
        daemon_lat = _lookup_latencies(client, digests)
        client.close()
        server.stop()
        # Fallback probe: the daemon is gone now, so a ``daemon://``
        # session must silently degrade to the flock files and still
        # produce the exact flock-mode result with zero host compiles.
        fallback = _fleet_worker(
            ("fallback", 0,
             os.path.join(scratch_dir, "fleet-fallback-0"),
             specs["daemon"])
        )
        fallback_ok = (
            fallback["transport"] == "file"
            and fallback["host_compiles"] == 0
            and _payload_signature(fallback) == reference_sig.get("flock")
        )
        fsck_clean = SharedBodyStore(
            store_dir, vm_version=VM_VERSION
        ).fsck().clean
        return {
            "fleet_processes": fleet,
            "fleet_host_compiles_flock": host_compiles["flock"],
            "fleet_host_compiles_daemon": host_compiles["daemon"],
            "fleet_shared_hits_daemon": shared_hits["daemon"],
            "daemon_transport_used": transports.get("daemon", ""),
            "daemon_alive": daemon_alive,
            "flock_lookup_p50_us": _percentile(flock_lat, 0.50),
            "flock_lookup_p99_us": _percentile(flock_lat, 0.99),
            "daemon_lookup_p50_us": _percentile(daemon_lat, 0.50),
            "daemon_lookup_p99_us": _percentile(daemon_lat, 0.99),
            "lookup_samples": len(daemon_lat),
            "fallback_ok": fallback_ok,
            "fsck_clean": fsck_clean,
        }

    return sweep, extras


def _record_overhead_sweep() -> Callable[[str], list]:
    """Recording cost on plain GUI startup (acceptance: under 10%).

    ``plain`` runs with no persistence session at all; ``record``
    attaches a recording session (no database: the log is captured in
    memory, which is all the per-syscall cost there is — the baseline
    snapshot and write-out happen at store/access time, outside the
    10% criterion).  Results must be identical: recording never alters
    the run it observes.
    """
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())

    def sweep(mode: str) -> list:
        return [
            run_vm(app, "startup",
                   persistence=(PersistenceConfig(record=True)
                                if mode == "record" else None),
                   vm_config=_config("compiled"))
            for _name, app in ordered
        ]

    return sweep


def _indirect_heavy_sweep():
    """Indirect-branch-bound corpora, no persistence.

    Each corpus keeps one ``callr`` dispatch site hot with a different
    dynamic target population (two, three, eight) so the polymorphic IC
    chain is exercised at every depth — including overflow, where the
    megamorphic corpus must degrade to the dispatcher path rather than
    thrash.  The compiled run's per-corpus IC counters are reported so
    the chains' engagement is auditable (and CI-gateable) rather than
    inferred from the speedup alone.
    """
    from repro.workloads.indirect import build_indirect_suite

    corpora = sorted(build_indirect_suite().items())
    ic_per_corpus: Dict[str, Dict[str, object]] = {}

    def sweep(mode: str) -> list:
        results = []
        for name, workload in corpora:
            result = run_vm(workload, "run", vm_config=_config(mode))
            if mode == "compiled":
                ics = result.ic_stats
                ic_per_corpus[name] = {
                    "hits": ics.hits,
                    "misses": ics.misses,
                    "hit_rate": ics.hit_rate,
                    "promotions": ics.promotions,
                    "depth_hits": list(ics.depth_hits),
                }
            results.append(result)
        return results

    def extras() -> Dict[str, object]:
        return {
            "ic_per_corpus": ic_per_corpus,
            "ic_hits": sum(c["hits"] for c in ic_per_corpus.values()),
            "ic_misses": sum(c["misses"] for c in ic_per_corpus.values()),
        }

    return sweep, extras


def _trace_linking_sweep():
    """Chain-heavy corpora: linked vs. unlinked compiled dispatch.

    Both modes execute identical simulated work (the trampoline and the
    fused regions are host-side only), so ``identical_results`` compares
    nolink against linked, and ``oracle_identical`` additionally pins
    the linked tier against the interpreted oracle — a linked speedup
    can never come from skipped simulation.  The linked run's per-corpus
    link/region counters are reported so CI can gate on the machinery
    actually engaging (zero bounces, fused regions) rather than on the
    speedup alone.
    """
    from repro.workloads.chains import build_chain_suite

    corpora = sorted(build_chain_suite().items())
    oracle_sigs = {
        name: _result_signature(
            run_vm(workload, "run",
                   vm_config=VMConfig(dispatch_mode="interpreted"))
        )
        for name, workload in corpora
    }
    link_per_corpus: Dict[str, Dict[str, object]] = {}
    oracle_identical = {"value": True}

    def sweep(mode: str) -> list:
        linked = mode == "linked"
        results = []
        for name, workload in corpora:
            result = run_vm(
                workload, "run",
                vm_config=VMConfig(
                    dispatch_mode="compiled", trace_linking=linked
                ),
            )
            if linked:
                link_per_corpus[name] = result.link_stats.to_dict()
                if _result_signature(result) != oracle_sigs[name]:
                    oracle_identical["value"] = False
            results.append(result)
        return results

    def extras() -> Dict[str, object]:
        return {
            "oracle_identical": oracle_identical["value"],
            "link_per_corpus": link_per_corpus,
            "link_bounces": sum(
                c["link_bounces"] for c in link_per_corpus.values()
            ),
            "regions_fused": sum(
                c["regions_fused"] for c in link_per_corpus.values()
            ),
            "chained_exits": sum(
                c["chained_exits"] for c in link_per_corpus.values()
            ),
        }

    return sweep, extras


def _ttfo_probe(
    workload,
    input_name: str,
    config: Optional[Callable[[str], VMConfig]] = None,
    persistence: Optional[Callable[[str], Optional[PersistenceConfig]]] = None,
    pre: Optional[Callable[[str], None]] = None,
) -> Callable[[str], float]:
    """Build a per-mode time-to-first-output probe for one workload.

    The probe runs the workload once under ``mode`` with a
    :class:`FirstOutputTimer` spliced into the process's output buffer
    and returns seconds from dispatch start to the first written byte.
    A program that never writes falls back to time-to-exit, so every
    family yields a number.  ``pre`` runs before the clock starts (e.g.
    clearing the factory memo for cold-start families).
    """

    def probe(mode: str) -> float:
        if pre is not None:
            pre(mode)
        timer = FirstOutputTimer()
        start = time.perf_counter()
        run_vm(
            workload,
            input_name,
            persistence=persistence(mode) if persistence else None,
            vm_config=config(mode) if config else _config(mode),
            output_timer=timer,
        )
        stamp = timer.first_output_s
        if stamp is None:
            stamp = time.perf_counter()
        return stamp - start

    return probe


def _gui_ttfo(
    scratch_dir: Optional[str] = None,
    persistence: Optional[Callable[[str], Optional[PersistenceConfig]]] = None,
    pre: Optional[Callable[[str], None]] = None,
    config: Optional[Callable[[str], VMConfig]] = None,
) -> Callable[[str], float]:
    """TTFO probe on the first GUI app (the GUI families' representative)."""
    apps, _store = build_gui_suite()
    _name, app = sorted(apps.items())[0]
    return _ttfo_probe(
        app, "startup", config=config, persistence=persistence, pre=pre
    )


def _fig5a_ttfo(scratch_dir: str) -> Callable[[str], float]:
    apps, _store = build_gui_suite()
    name, app = sorted(apps.items())[0]
    db = CacheDatabase(os.path.join(scratch_dir, "ttfo-fig5a-" + name))
    run_vm(app, "startup", persistence=PersistenceConfig(database=db),
           vm_config=_config("compiled"))
    return _ttfo_probe(
        app, "startup",
        persistence=lambda mode: PersistenceConfig(database=db),
    )


def _sidecar_ttfo(scratch_dir: str) -> Callable[[str], float]:
    from repro.vm.compile import clear_code_object_cache

    apps, _store = build_gui_suite()
    name, app = sorted(apps.items())[0]
    db = CacheDatabase(os.path.join(scratch_dir, "ttfo-sidecar-" + name))
    run_vm(app, "startup", persistence=PersistenceConfig(database=db),
           vm_config=_config("compiled"))
    return _ttfo_probe(
        app, "startup",
        config=lambda mode: _config("compiled"),
        persistence=lambda mode: PersistenceConfig(
            database=db, sidecar=(mode == "warm")
        ),
        pre=lambda mode: clear_code_object_cache(),
    )


def _shared_store_ttfo(scratch_dir: str) -> Callable[[str], float]:
    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.compile import clear_code_object_cache
    from repro.vm.engine import VM_VERSION

    apps, _store = build_gui_suite()
    name, app = sorted(apps.items())[0]
    shared = SharedBodyStore(
        os.path.join(scratch_dir, "ttfo-shared-store"), vm_version=VM_VERSION
    )
    donor = CacheDatabase(
        os.path.join(scratch_dir, "ttfo-shared-donor-" + name),
        shared_store=shared,
    )
    run_vm(app, "startup", persistence=PersistenceConfig(database=donor),
           vm_config=_config("compiled"))
    consumer = CacheDatabase(
        os.path.join(scratch_dir, "ttfo-shared-consumer-" + name)
    )
    return _ttfo_probe(
        app, "startup",
        config=lambda mode: _config("compiled"),
        persistence=lambda mode: PersistenceConfig(
            database=consumer, readonly=True,
            shared_store=(shared if mode == "shared" else None),
        ),
        pre=lambda mode: clear_code_object_cache(),
    )


def _spec_ttfo() -> Callable[[str], float]:
    _name, workload = sorted(build_suite().items())[0]
    return _ttfo_probe(workload, "train")


def _indirect_ttfo() -> Callable[[str], float]:
    from repro.workloads.indirect import build_indirect_suite

    _name, workload = sorted(build_indirect_suite().items())[0]
    return _ttfo_probe(workload, "run")


def _chains_ttfo() -> Callable[[str], float]:
    from repro.workloads.chains import build_chain_suite

    _name, workload = sorted(build_chain_suite().items())[0]
    return _ttfo_probe(
        workload, "run",
        config=lambda mode: VMConfig(
            dispatch_mode="compiled", trace_linking=(mode == "linked")
        ),
    )


def _record_ttfo() -> Callable[[str], float]:
    apps, _store = build_gui_suite()
    _name, app = sorted(apps.items())[0]
    return _ttfo_probe(
        app, "startup",
        config=lambda mode: _config("compiled"),
        persistence=lambda mode: (
            PersistenceConfig(record=True) if mode == "record" else None
        ),
    )


#: Queue depth for the tiered_warmup family: deep enough that the gate
#: corpus's cold burst (~300 traces per app) never overflows into the
#: queue-full synchronous fallback — overflow is correct but puts
#: compiles back on the TTFO path, which is what the family measures.
_WARMUP_QUEUE_DEPTH = 2048

#: ``repro prewarm --jobs`` values the tiered_warmup extras sweep.
_PREWARM_JOBS_SWEEP = (1, 2, 4)

#: Headroom for the core-aware monotonicity check: when extra jobs
#: cannot buy real parallelism (job count above the machine's core
#: count), the sweep only has to stay within this factor of the
#: previous job count's wall clock — wide enough for scheduler and
#: fork overhead on an oversubscribed single-core host, tight enough
#: that pathological cross-process contention (e.g. a store lock
#: livelock) still fails the gate.
_PREWARM_NOISE_X = 1.5


def _tiered_warmup_sweep(scratch_dir: str):
    """Cold startup corpus: synchronous vs. background compilation.

    Each repetition clears the in-process factory memo, so every sweep
    pays the full cold-start cost under both modes.  Total wall clock is
    expected to be roughly equal — background mode still compiles
    everything, just off the critical path (and drains its queue before
    the run returns) — which is exactly why the family's gate reads the
    TTFO probe, not the sweep time.  The interpreted oracle pins the
    background tier's observable behavior; the extras carry the
    ``repro prewarm`` jobs sweep and the warm-run verification.
    """
    from repro.persist.prewarm import run_prewarm, verify_warm
    from repro.vm.compile import clear_code_object_cache
    from repro.workloads.warmup import GATE_APP, warmup_corpus

    apps = warmup_corpus()
    ordered = sorted(apps.items())

    def config(mode: str) -> VMConfig:
        return VMConfig(
            compile_mode=mode, compile_queue_depth=_WARMUP_QUEUE_DEPTH
        )

    def sweep(mode: str) -> list:
        clear_code_object_cache()
        return [run_vm(app, "default", vm_config=config(mode))
                for _name, app in ordered]

    # Background vs. the interpreted oracle: a TTFO win can never come
    # from divergent simulation (identical_results already pins
    # background against sync; this pins both against the reference
    # tier).
    gate_app = apps[GATE_APP]
    oracle_sig = _result_signature(
        run_vm(gate_app, "default",
               vm_config=VMConfig(dispatch_mode="interpreted"))
    )
    clear_code_object_cache()
    background_sig = _result_signature(
        run_vm(gate_app, "default", vm_config=config("background"))
    )
    oracle_identical = background_sig == oracle_sig
    clear_code_object_cache()
    probe_result = run_vm(gate_app, "default", vm_config=config("background"))
    queue_stats = probe_result.queue_stats.to_dict()

    def extras() -> Dict[str, object]:
        cpu_count = os.cpu_count() or 1
        sweep_rows: List[Dict[str, object]] = []
        monotonic = True
        previous: Optional[Dict[str, object]] = None
        for jobs in _PREWARM_JOBS_SWEEP:
            db_dir = os.path.join(scratch_dir, "prewarm-j%d" % jobs)
            store_dir = os.path.join(scratch_dir, "prewarm-store-j%d" % jobs)
            shutil.rmtree(db_dir, ignore_errors=True)
            shutil.rmtree(store_dir, ignore_errors=True)
            report = run_prewarm(
                db_dir, jobs=jobs, corpus="warmup",
                shared_store_dir=store_dir,
            )
            row: Dict[str, object] = {
                "jobs": jobs,
                "wall_s": report.wall_s,
                "compiled": report.compiled,
                "admitted": report.admitted,
            }
            if previous is not None:
                # Core-aware monotonicity: more jobs must help when they
                # map to real cores, and must stay within noise headroom
                # when they cannot (single-core hosts, jobs > cores).
                if min(jobs, cpu_count) > min(previous["jobs"], cpu_count):
                    row["monotonic_ok"] = report.wall_s < previous["wall_s"]
                else:
                    row["monotonic_ok"] = (
                        report.wall_s
                        <= previous["wall_s"] * _PREWARM_NOISE_X
                    )
                monotonic = monotonic and row["monotonic_ok"]
            sweep_rows.append(row)
            previous = {"jobs": jobs, "wall_s": report.wall_s}
        warm_host_compiles = verify_warm(
            os.path.join(scratch_dir, "prewarm-j%d" % _PREWARM_JOBS_SWEEP[0]),
            "warmup",
            os.path.join(
                scratch_dir, "prewarm-store-j%d" % _PREWARM_JOBS_SWEEP[0]
            ),
        )
        return {
            "oracle_identical": oracle_identical,
            "cpu_count": cpu_count,
            "queue": queue_stats,
            "prewarm_jobs_sweep": sweep_rows,
            "jobs_monotonic_ok": monotonic,
            "prewarm_warm_host_compiles": warm_host_compiles,
        }

    ttfo = _ttfo_probe(
        gate_app, "default",
        config=config,
        pre=lambda mode: clear_code_object_cache(),
    )
    return sweep, extras, ttfo


def _transparency_sweep(scratch_dir: str):
    """The anti-instrumentation corpus under attack-grade scrutiny.

    The timed sweep is plain interpreted vs. compiled dispatch over the
    whole adversarial suite.  The extras carry the actual transparency
    audit:

    * every workload's full signature (output, exit status, every
      VMStats counter) under compiled, linked, and background-compile
      dispatch against the interpreted oracle;
    * the self-observing workloads (everything but the clock probe)
      byte-compared against the *native* oracle — their outputs fold
      every code byte they read and every self-write they observe, so
      ``stale_reads`` counts runs where the VM let a stale byte
      through;
    * per-churner ``smc_invalidations`` (a churner that triggers zero
      invalidations means the SMC detector never saw its stores);
    * a warm restart of the self-observing corpus over all three
      persistence transports (sidecar, shared flock store, cache-server
      daemon), each warm output compared byte-for-byte against the cold
      run — a revived trace must not resurrect pre-SMC code.

    The clock probe is timed but exempt from the native comparison and
    the warm-restart check by design: its output embeds raw
    ``SYS_CLOCK`` deltas, which legitimately differ native vs. VM (the
    probe *detects* the DBI's cost — transparency here means the deltas
    are bit-identical across all four VM tiers, which the oracle check
    enforces) and cold vs. warm (persisted traces change the cost of a
    run; that is the point of the cache).
    """
    from repro.persist.cacheserver import CacheServer
    from repro.persist.daemon import resolve_shared_store
    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.compile import clear_code_object_cache
    from repro.vm.engine import VM_VERSION
    from repro.workloads.adversarial import (
        CHURN_WORKLOADS,
        PERSISTED_WORKLOADS,
        build_adversarial_suite,
    )
    from repro.workloads.harness import run_native

    suite = build_adversarial_suite()
    ordered = sorted(suite.items())

    def sweep(mode: str) -> list:
        clear_code_object_cache()
        return [run_vm(wl, "run", vm_config=_config(mode))
                for _name, wl in ordered]

    tier_configs = {
        "compiled": VMConfig(dispatch_mode="compiled", trace_linking=False),
        "linked": VMConfig(dispatch_mode="compiled", trace_linking=True),
        "background": VMConfig(
            dispatch_mode="compiled", compile_mode="background",
            compile_queue_depth=512,
        ),
    }

    def extras() -> Dict[str, object]:
        oracle_failures: List[str] = []
        stale_reads = 0
        churn_smc: Dict[str, int] = {}
        for name, wl in ordered:
            native = run_native(wl, "run")
            clear_code_object_cache()
            oracle = run_vm(
                wl, "run", vm_config=VMConfig(dispatch_mode="interpreted")
            )
            oracle_sig = _result_signature(oracle)
            if name != "timer" and (
                (oracle.output, oracle.exit_status)
                != (native.output, native.exit_status)
            ):
                stale_reads += 1
            for tier, config in tier_configs.items():
                clear_code_object_cache()
                result = run_vm(wl, "run", vm_config=config)
                if _result_signature(result) != oracle_sig:
                    oracle_failures.append("%s/%s" % (name, tier))
                elif name != "timer" and (
                    (result.output, result.exit_status)
                    != (native.output, native.exit_status)
                ):
                    stale_reads += 1
            if name in CHURN_WORKLOADS:
                churn_smc[name] = oracle.stats.smc_invalidations

        # Warm restart over all three transports: the adversarial
        # corpus's code observations must survive persistence.
        store_dir = os.path.join(scratch_dir, "transparency-store")
        shared = SharedBodyStore(store_dir, vm_version=VM_VERSION)
        warm_failures: List[str] = []
        warm_preloaded = 0
        server = CacheServer(store_dir, vm_version=VM_VERSION)
        server.start()
        try:
            daemon_store = resolve_shared_store(
                "daemon://" + store_dir, VM_VERSION
            )
            for name in PERSISTED_WORKLOADS:
                wl = suite[name]
                db_dir = os.path.join(scratch_dir, "transparency-" + name)
                donor = CacheDatabase(db_dir, shared_store=shared)
                clear_code_object_cache()
                cold = run_vm(
                    wl, "run",
                    persistence=PersistenceConfig(database=donor,
                                                  sidecar=True),
                    vm_config=_config("compiled"),
                )
                cold_sig = (cold.output, cold.exit_status)
                warm_configs = {
                    "sidecar": PersistenceConfig(
                        database=CacheDatabase(db_dir, shared_store=shared),
                        sidecar=True,
                    ),
                    "shared": PersistenceConfig(
                        database=CacheDatabase(db_dir), readonly=True,
                        shared_store=shared,
                    ),
                    "daemon": PersistenceConfig(
                        database=CacheDatabase(db_dir), readonly=True,
                        shared_store=daemon_store,
                    ),
                }
                for transport, persistence in warm_configs.items():
                    clear_code_object_cache()
                    warm = run_vm(
                        wl, "run", persistence=persistence,
                        vm_config=_config("compiled"),
                    )
                    warm_preloaded += warm.stats.traces_from_persistent
                    if (warm.output, warm.exit_status) != cold_sig:
                        warm_failures.append("%s/%s" % (name, transport))
                        stale_reads += 1
        finally:
            server.stop()

        return {
            "oracle_identical": not oracle_failures,
            "oracle_failures": oracle_failures,
            "stale_reads": stale_reads,
            "churn_smc": churn_smc,
            "smc_ok": all(count > 0 for count in churn_smc.values())
            and set(churn_smc) == set(CHURN_WORKLOADS),
            "warm_identical": not warm_failures,
            "warm_failures": warm_failures,
            "warm_preloaded": warm_preloaded,
        }

    ttfo = _ttfo_probe(
        suite["checksum"], "run",
        pre=lambda mode: clear_code_object_cache(),
    )
    return sweep, extras, ttfo


def _merge_existing(
    out_path: str, results: Dict[str, object]
) -> Dict[str, object]:
    """Merge this invocation's families into an existing results file.

    A selective ``--family`` run used to rewrite ``out_path`` wholesale,
    silently discarding every family measured by earlier invocations.
    Instead: families measured now win, families only present on disk
    are preserved, and ``host``/``config`` describe the current
    invocation (the old ones described runs being replaced anyway).  An
    absent or unparsable file degrades to a plain write.
    """
    try:
        with open(out_path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return results
    merged_workloads = dict(previous.get("workloads") or {})
    merged_workloads.update(results["workloads"])
    merged = dict(results)
    merged["workloads"] = merged_workloads
    return merged


def run_wallclock(
    scratch_dir: str,
    warmup: int = 2,
    reps: int = 3,
    families: Optional[Tuple[str, ...]] = None,
    out_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the wall-clock suite; return (and optionally write) results.

    Args:
        scratch_dir: Writable directory for the persistent-cache
            databases the fig5a family needs.
        warmup: Untimed repetitions per family per mode.
        reps: Timed repetitions per family per mode (score = min).
        families: Subset of family names to run (default: all).
        out_path: When given, the result dict is written there as JSON.
    """
    # Each builder yields (sweep, modes, extras, ttfo): the two timed
    # modes (baseline first), an optional post-measurement extras
    # callable whose keys are merged into the family dict, and the
    # family's per-mode time-to-first-output probe.
    def _build_sidecar():
        sweep, extras = _sidecar_cold_warm_sweep(scratch_dir)
        return sweep, ("cold", "warm"), extras, _sidecar_ttfo(scratch_dir)

    def _build_shared_store():
        sweep, extras = _shared_store_sweep(scratch_dir)
        return (
            sweep, ("isolated", "shared"), extras,
            _shared_store_ttfo(scratch_dir),
        )

    def _build_indirect_heavy():
        sweep, extras = _indirect_heavy_sweep()
        return sweep, _MODES, extras, _indirect_ttfo()

    def _build_trace_linking():
        sweep, extras = _trace_linking_sweep()
        return sweep, ("nolink", "linked"), extras, _chains_ttfo()

    def _build_tiered_warmup():
        sweep, extras, ttfo = _tiered_warmup_sweep(scratch_dir)
        return sweep, ("sync", "background"), extras, ttfo

    def _build_transparency():
        sweep, extras, ttfo = _transparency_sweep(scratch_dir)
        return sweep, _MODES, extras, ttfo

    def _build_fleet_warmup():
        # No TTFO probe: the family's headline is the N-process fleet
        # wall clock plus the per-lookup latency extras (the daemon's
        # extras stop the in-process server, so a later probe would
        # only measure the fallback path anyway).
        sweep, extras = _fleet_warmup_sweep(scratch_dir)
        return sweep, ("flock", "daemon"), extras, None

    builders: Dict[str, Callable[[], tuple]] = {
        "fig5a_gui": lambda: (
            _fig5a_gui_sweep(scratch_dir), _MODES, None,
            _fig5a_ttfo(scratch_dir),
        ),
        "fig2b_gui": lambda: (_fig2b_gui_sweep(), _MODES, None, _gui_ttfo()),
        "headline_spec": lambda: (
            _headline_spec_sweep(), _MODES, None, _spec_ttfo()
        ),
        "sidecar_cold_warm": _build_sidecar,
        "shared_store": _build_shared_store,
        "indirect_heavy": _build_indirect_heavy,
        "trace_linking": _build_trace_linking,
        "record_overhead": lambda: (
            _record_overhead_sweep(), ("plain", "record"), None,
            _record_ttfo(),
        ),
        "tiered_warmup": _build_tiered_warmup,
        "fleet_warmup": _build_fleet_warmup,
        "transparency": _build_transparency,
    }
    selected = families if families is not None else tuple(builders)
    unknown = [name for name in selected if name not in builders]
    if unknown:
        raise ValueError("unknown bench families: %s" % ", ".join(unknown))

    workloads: Dict[str, object] = {}
    for name in selected:
        sweep, modes, extras, ttfo = builders[name]()
        family = _measure_family(sweep, warmup, reps, modes=modes)
        if extras is not None:
            family.update(extras())
        if ttfo is not None:
            for mode in modes:
                family["%s_ttfo_s" % mode] = min(
                    ttfo(mode) for _ in range(max(2, reps))
                )
            baseline, contender = modes
            baseline_ttfo = family["%s_ttfo_s" % baseline]
            if baseline_ttfo > 0:
                family["ttfo_ratio_x"] = (
                    family["%s_ttfo_s" % contender] / baseline_ttfo
                )
        workloads[name] = family

    results: Dict[str, object] = {
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {"warmup_reps": warmup, "timed_reps": reps},
        "workloads": workloads,
    }
    if out_path is not None:
        results = _merge_existing(out_path, results)
    # The gate reads the merged set, so a selective rerun that skipped
    # the gate workload still reports the last measured gate numbers.
    merged_workloads = results["workloads"]
    gate: Dict[str, object] = {
        "workload": GATE_WORKLOAD,
        "threshold_x": GATE_THRESHOLD_X,
    }
    results["gate"] = gate
    if GATE_WORKLOAD in merged_workloads:
        family = merged_workloads[GATE_WORKLOAD]
        # The gate reads the trimmed mean, not the best rep: a single
        # lucky repetition must not pass (or fail) the acceptance bar.
        trimmed = family.get("speedup_trimmed_x", family["speedup_x"])
        gate["speedup_x"] = family["speedup_x"]
        gate["speedup_trimmed_x"] = trimmed
        gate["pass"] = (
            family["identical_results"] and trimmed >= GATE_THRESHOLD_X
        )

    if out_path is not None:
        payload = json.dumps(results, indent=2, sort_keys=True) + "\n"
        with open(out_path, "w") as handle:
            handle.write(payload)
    return results


def default_output_path() -> str:
    """``BENCH_wallclock.json`` at the repository root (next to src/)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)),
                        "BENCH_wallclock.json")
