"""Wall-clock benchmark harness for the two dispatch tiers.

Times *host* wall-clock seconds — not simulated cycles — for the same
workload families the cycle-level benchmarks regenerate from the paper:

* ``fig5a_gui``: GUI startup with a warm same-input persistent cache
  (the Figure 5(a) configuration), the headline configuration for the
  compiled dispatch tier: warm runs revive every trace from the
  persistent cache and spend their time executing, which is exactly
  what trace-compiled dispatch accelerates.
* ``fig2b_gui``: plain GUI startup, no persistence (Figure 2(b)).
* ``headline_spec``: the SPEC2K INT suite (Train inputs) plus the
  Oracle phases, no persistence.

Methodology: each family is timed as a full sweep (every workload in
the family, sequentially) under each dispatch mode.  Sweeps run
``warmup`` untimed repetitions first — standard JIT-benchmark practice,
here amortizing the host ``compile()`` of trace closures, which the
factory memo (:mod:`repro.vm.compile`) shares across runs exactly like
the paper's persistent code cache shares translations across
executions — then ``reps`` timed repetitions; the score is the minimum
(least-noise) repetition.  Before timing, one run per mode is compared
field-for-field (output, exit status, every :class:`VMStats` counter)
so a reported speedup can never come from divergent behavior.

The result dictionary is also written as ``BENCH_wallclock.json`` at
the repository root by :func:`run_wallclock` when ``out_path`` is given
(the CLI and the benchmark suite both do).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.vm.engine import VMConfig
from repro.workloads.harness import run_vm
from repro.workloads.gui import build_gui_suite
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.spec2k import build_suite

#: The acceptance gate: compiled dispatch must beat interpreted dispatch
#: by at least this factor (wall-clock) on the fig5a GUI workload.
GATE_WORKLOAD = "fig5a_gui"
GATE_THRESHOLD_X = 1.5

_MODES = ("interpreted", "compiled")


def _result_signature(result) -> tuple:
    """Everything observable about a run, for cross-tier comparison."""
    return (result.output, result.exit_status, vars(result.stats))


def _measure_family(
    sweep: Callable[[str], list], warmup: int, reps: int
) -> Dict[str, object]:
    signatures = {mode: [_result_signature(r) for r in sweep(mode)]
                  for mode in _MODES}
    identical = signatures["interpreted"] == signatures["compiled"]
    for _ in range(warmup):
        for mode in _MODES:
            sweep(mode)
    # Reps are interleaved (i, c, i, c, ...) so slow host-frequency /
    # load drift hits both modes equally instead of biasing whichever
    # mode happens to be timed last; the cycle collector is paused during
    # timed reps so its pauses cannot land in one mode's window.
    times: Dict[str, List[float]] = {mode: [] for mode in _MODES}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            for mode in _MODES:
                start = time.perf_counter()
                sweep(mode)
                times[mode].append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    best_i = min(times["interpreted"])
    best_c = min(times["compiled"])
    return {
        "interpreted_s": best_i,
        "compiled_s": best_c,
        "speedup_x": best_i / best_c,
        "reps_interpreted_s": times["interpreted"],
        "reps_compiled_s": times["compiled"],
        "identical_results": identical,
    }


def _config(mode: str) -> VMConfig:
    return VMConfig(dispatch_mode=mode)


def _fig5a_gui_sweep(scratch_dir: str) -> Callable[[str], list]:
    """Warm same-input persistent-cache GUI startup (Figure 5(a))."""
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    databases = {}
    for name, app in ordered:
        db = CacheDatabase(os.path.join(scratch_dir, "fig5a-" + name))
        # Cold run populates the persistent cache (untimed setup).
        run_vm(app, "startup", persistence=PersistenceConfig(database=db),
               vm_config=_config("compiled"))
        databases[name] = db

    def sweep(mode: str) -> list:
        return [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(database=databases[name]),
                   vm_config=_config(mode))
            for name, app in ordered
        ]

    return sweep


def _fig2b_gui_sweep() -> Callable[[str], list]:
    """Plain GUI startup, no persistence (Figure 2(b))."""
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())

    def sweep(mode: str) -> list:
        return [run_vm(app, "startup", vm_config=_config(mode))
                for _name, app in ordered]

    return sweep


def _headline_spec_sweep() -> Callable[[str], list]:
    """SPEC2K INT Train sweep plus the Oracle phases, no persistence."""
    spec = sorted(build_suite().items())
    oracle = build_oracle()

    def sweep(mode: str) -> list:
        results = [run_vm(wl, "train", vm_config=_config(mode))
                   for _name, wl in spec]
        results.extend(run_vm(oracle, phase, vm_config=_config(mode))
                       for phase in PHASES)
        return results

    return sweep


def run_wallclock(
    scratch_dir: str,
    warmup: int = 1,
    reps: int = 3,
    families: Optional[Tuple[str, ...]] = None,
    out_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the wall-clock suite; return (and optionally write) results.

    Args:
        scratch_dir: Writable directory for the persistent-cache
            databases the fig5a family needs.
        warmup: Untimed repetitions per family per mode.
        reps: Timed repetitions per family per mode (score = min).
        families: Subset of family names to run (default: all).
        out_path: When given, the result dict is written there as JSON.
    """
    builders: Dict[str, Callable[[], Callable[[str], list]]] = {
        "fig5a_gui": lambda: _fig5a_gui_sweep(scratch_dir),
        "fig2b_gui": _fig2b_gui_sweep,
        "headline_spec": _headline_spec_sweep,
    }
    selected = families if families is not None else tuple(builders)
    unknown = [name for name in selected if name not in builders]
    if unknown:
        raise ValueError("unknown bench families: %s" % ", ".join(unknown))

    workloads: Dict[str, object] = {}
    for name in selected:
        workloads[name] = _measure_family(builders[name](), warmup, reps)

    results: Dict[str, object] = {
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {"warmup_reps": warmup, "timed_reps": reps},
        "workloads": workloads,
        "gate": {
            "workload": GATE_WORKLOAD,
            "threshold_x": GATE_THRESHOLD_X,
        },
    }
    gate = results["gate"]
    if GATE_WORKLOAD in workloads:
        family = workloads[GATE_WORKLOAD]
        gate["speedup_x"] = family["speedup_x"]
        gate["pass"] = (
            family["identical_results"]
            and family["speedup_x"] >= GATE_THRESHOLD_X
        )

    if out_path is not None:
        payload = json.dumps(results, indent=2, sort_keys=True) + "\n"
        with open(out_path, "w") as handle:
            handle.write(payload)
    return results


def default_output_path() -> str:
    """``BENCH_wallclock.json`` at the repository root (next to src/)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)),
                        "BENCH_wallclock.json")
