"""Wall-clock benchmark harness for the two dispatch tiers.

Times *host* wall-clock seconds — not simulated cycles — for the same
workload families the cycle-level benchmarks regenerate from the paper:

* ``fig5a_gui``: GUI startup with a warm same-input persistent cache
  (the Figure 5(a) configuration), the headline configuration for the
  compiled dispatch tier: warm runs revive every trace from the
  persistent cache and spend their time executing, which is exactly
  what trace-compiled dispatch accelerates.
* ``fig2b_gui``: plain GUI startup, no persistence (Figure 2(b)).
* ``headline_spec``: the SPEC2K INT suite (Train inputs) plus the
  Oracle phases, no persistence.
* ``sidecar_cold_warm``: compiled-tier GUI startup against a warm trace
  database, cold host (factory memo cleared, sidecar disabled) vs. warm
  sidecar (factories revived from ``compiled-bodies.pcs``).  The gap is
  exactly the host ``compile()`` cost the sidecar removes from a fresh
  process; the report also carries the host-compile counts per mode.
* ``shared_store``: the cross-application configuration the paper's
  Figure 9/10 measures, one level up — database A (per app) runs cold
  and publishes its compiled bodies to a per-host shared store
  (:mod:`repro.persist.sharedstore`); database B, which never ran any
  workload, then runs its own cold start ``isolated`` (no shared store:
  every trace pays a host ``compile()``) vs. ``shared`` (bodies revived
  from the pool A warmed: zero host ``compile()``\\ s).  B runs
  read-only so every repetition measures a genuinely cold database.
* ``record_overhead``: plain GUI startup with vs. without a recording
  session attached (:mod:`repro.replay`).  Recording logs every
  completed syscall and scheduling decision; the acceptance criterion
  caps its wall-clock cost at 10% over the plain run, so capturing a
  session for later differential replay is always affordable.
* ``indirect_heavy``: indirect-branch-bound microcorpora (alternating
  two-target pair, rotating three-target cycle, megamorphic
  eight-target table), no persistence.  The compiled tier's win here is
  the polymorphic inline-cache chains at ``jr``/``callr``/``ret`` exits
  (:mod:`repro.vm.compile`); the report carries per-corpus IC
  hit/miss/depth counters so CI can assert the chains actually engage.
* ``trace_linking``: chain-heavy microcorpora (jmp relays and a
  branchy detour loop, :mod:`repro.workloads.chains`), no persistence.
  Both timed modes run the *compiled* tier: ``nolink`` disables the
  chain trampoline (``trace_linking=False``, the PR-5 one-closure-call
  baseline), ``linked`` enables direct-exit linking plus superblock
  fusion.  The report carries per-corpus link/region counters and an
  ``oracle_identical`` flag (linked runs compared field-for-field
  against the interpreted oracle) so the win is auditable: stable
  chains must show zero dispatcher bounces and fused regions.

Methodology: each family is timed as a full sweep (every workload in
the family, sequentially) under each mode.  Sweeps run ``warmup``
untimed repetitions first — standard JIT-benchmark practice, here
amortizing the host ``compile()`` of trace closures, which the factory
memo (:mod:`repro.vm.compile`) shares across runs exactly like the
paper's persistent code cache shares translations across executions —
then ``reps`` timed repetitions.  The headline score is the trimmed
mean (the highest rep dropped, since timing noise only inflates);
per-mode minima and the max-over-min spread are reported alongside so
a surprising headline can be sanity-checked against run-to-run noise
without rerunning, and the CLI's ``--check`` warns when a family's
spread exceeds its noise threshold.  Before timing, one run per mode is
compared field-for-field (output, exit status, every :class:`VMStats`
counter) so a reported speedup can never come from divergent
behavior.

The result dictionary is also written as ``BENCH_wallclock.json`` at
the repository root by :func:`run_wallclock` when ``out_path`` is given
(the CLI and the benchmark suite both do).  A selective run (``--family
X``) merges into the existing file instead of clobbering it: families
measured this invocation are refreshed, families measured by earlier
invocations are preserved, and the gate is recomputed over the merged
set — so a quick single-family rerun never erases the rest of the
recorded trajectory.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.vm.engine import VMConfig
from repro.workloads.harness import run_vm
from repro.workloads.gui import build_gui_suite
from repro.workloads.oracle import PHASES, build_oracle
from repro.workloads.spec2k import build_suite

#: The acceptance gate: compiled dispatch must beat interpreted dispatch
#: by at least this factor (wall-clock) on the fig5a GUI workload.
GATE_WORKLOAD = "fig5a_gui"
GATE_THRESHOLD_X = 1.5

_MODES = ("interpreted", "compiled")


def _result_signature(result) -> tuple:
    """Everything observable about a run, for cross-tier comparison."""
    return (result.output, result.exit_status, vars(result.stats))


def _sweep_stats(samples: List[float]) -> Dict[str, float]:
    """Headline statistics for one mode's timed repetitions.

    ``min`` stays the headline (least-noise: host noise only ever
    inflates a rep).  The trimmed mean (highest rep dropped, given
    enough reps) and the max-over-min spread are reported alongside so
    a surprising headline is auditable against run-to-run noise.
    """
    ordered = sorted(samples)
    trimmed = ordered[:-1] if len(ordered) >= 3 else ordered
    return {
        "min_s": ordered[0],
        "trimmed_mean_s": sum(trimmed) / len(trimmed),
        "spread_pct": (
            100.0 * (ordered[-1] - ordered[0]) / ordered[0]
            if ordered[0] > 0 else 0.0
        ),
    }


def _measure_family(
    sweep: Callable[[str], list],
    warmup: int,
    reps: int,
    modes: Tuple[str, str] = _MODES,
) -> Dict[str, object]:
    """Time ``sweep`` under two modes; first mode is the baseline."""
    baseline, contender = modes
    signatures = {mode: [_result_signature(r) for r in sweep(mode)]
                  for mode in modes}
    identical = signatures[baseline] == signatures[contender]
    for _ in range(warmup):
        for mode in modes:
            sweep(mode)
    # Reps are interleaved (i, c, i, c, ...) so slow host-frequency /
    # load drift hits both modes equally instead of biasing whichever
    # mode happens to be timed last; the cycle collector is paused during
    # timed reps so its pauses cannot land in one mode's window.
    times: Dict[str, List[float]] = {mode: [] for mode in modes}
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(reps):
            for mode in modes:
                start = time.perf_counter()
                sweep(mode)
                times[mode].append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    stats = {mode: _sweep_stats(times[mode]) for mode in modes}
    family: Dict[str, object] = {
        "speedup_x": stats[baseline]["min_s"] / stats[contender]["min_s"],
        "speedup_trimmed_x": (
            stats[baseline]["trimmed_mean_s"]
            / stats[contender]["trimmed_mean_s"]
        ),
        "identical_results": identical,
    }
    for mode in modes:
        family["%s_s" % mode] = stats[mode]["min_s"]
        family["%s_trimmed_s" % mode] = stats[mode]["trimmed_mean_s"]
        family["%s_spread_pct" % mode] = stats[mode]["spread_pct"]
        family["reps_%s_s" % mode] = times[mode]
    return family


def _config(mode: str) -> VMConfig:
    return VMConfig(dispatch_mode=mode)


def _fig5a_gui_sweep(scratch_dir: str) -> Callable[[str], list]:
    """Warm same-input persistent-cache GUI startup (Figure 5(a))."""
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    databases = {}
    for name, app in ordered:
        db = CacheDatabase(os.path.join(scratch_dir, "fig5a-" + name))
        # Cold run populates the persistent cache (untimed setup).
        run_vm(app, "startup", persistence=PersistenceConfig(database=db),
               vm_config=_config("compiled"))
        databases[name] = db

    def sweep(mode: str) -> list:
        return [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(database=databases[name]),
                   vm_config=_config(mode))
            for name, app in ordered
        ]

    return sweep


def _fig2b_gui_sweep() -> Callable[[str], list]:
    """Plain GUI startup, no persistence (Figure 2(b))."""
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())

    def sweep(mode: str) -> list:
        return [run_vm(app, "startup", vm_config=_config(mode))
                for _name, app in ordered]

    return sweep


def _headline_spec_sweep() -> Callable[[str], list]:
    """SPEC2K INT Train sweep plus the Oracle phases, no persistence."""
    spec = sorted(build_suite().items())
    oracle = build_oracle()

    def sweep(mode: str) -> list:
        results = [run_vm(wl, "train", vm_config=_config(mode))
                   for _name, wl in spec]
        results.extend(run_vm(oracle, phase, vm_config=_config(mode))
                       for phase in PHASES)
        return results

    return sweep


def _sidecar_cold_warm_sweep(scratch_dir: str):
    """Cold vs. warm host-compile cost of the compiled-body sidecar.

    Both modes run the compiled tier against a warm per-app trace
    database, so no translation happens and the tiers' simulated work is
    identical.  ``cold`` clears the in-process factory memo and disables
    the sidecar before each sweep — every trace pays a fresh host
    ``compile()``, the first-run-of-a-new-process cost.  ``warm`` also
    clears the memo but revives every factory from the on-disk sidecar.
    The wall-clock gap is exactly the host-compile work the sidecar
    removes; the per-mode host-compile counts are reported so CI can
    assert the warm path performs zero host ``compile()`` calls.
    """
    from repro.vm.compile import clear_code_object_cache

    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    databases = {}
    for name, app in ordered:
        db = CacheDatabase(os.path.join(scratch_dir, "sidecar-" + name))
        # Cold run populates the trace cache and the sidecar (untimed).
        run_vm(app, "startup", persistence=PersistenceConfig(database=db),
               vm_config=_config("compiled"))
        databases[name] = db
    host_compiles = {"cold": 0, "warm": 0}

    def sweep(mode: str) -> list:
        clear_code_object_cache()
        results = [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(
                       database=databases[name],
                       sidecar=(mode == "warm"),
                   ),
                   vm_config=_config("compiled"))
            for name, app in ordered
        ]
        host_compiles[mode] = sum(
            r.persistence_report["sidecar_host_compiles"] for r in results
        )
        return results

    def extras() -> Dict[str, object]:
        return {
            "host_compiles_cold": host_compiles["cold"],
            "host_compiles_warm": host_compiles["warm"],
        }

    return sweep, extras


def _shared_store_sweep(scratch_dir: str):
    """Cross-database body reuse through the per-host shared store.

    Setup (untimed): for each GUI app, a donor database attached to one
    shared store runs the app cold, publishing every compiled body.  The
    timed sweeps then run each app against a *consumer* database that
    never saw any workload (empty, read-only, so it stays cold across
    repetitions): ``isolated`` detaches the store and pays every host
    ``compile()``; ``shared`` revives every body DB-A published.  The
    host-compile and shared-hit counts per mode are reported so CI can
    assert the cross-database warm path performs zero host
    ``compile()`` calls.
    """
    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.compile import clear_code_object_cache
    from repro.vm.engine import VM_VERSION

    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())
    shared = SharedBodyStore(
        os.path.join(scratch_dir, "shared-store"), vm_version=VM_VERSION
    )
    consumers = {}
    for name, app in ordered:
        donor = CacheDatabase(
            os.path.join(scratch_dir, "shared-donor-" + name),
            shared_store=shared,
        )
        clear_code_object_cache()
        # Donor cold run: populates its trace cache, its private
        # sidecar, and — the point — the shared per-host pool (untimed).
        run_vm(app, "startup", persistence=PersistenceConfig(database=donor),
               vm_config=_config("compiled"))
        consumers[name] = CacheDatabase(
            os.path.join(scratch_dir, "shared-consumer-" + name)
        )
    host_compiles = {"isolated": 0, "shared": 0}
    shared_hits = {"isolated": 0, "shared": 0}

    def sweep(mode: str) -> list:
        clear_code_object_cache()
        results = [
            run_vm(app, "startup",
                   persistence=PersistenceConfig(
                       database=consumers[name],
                       readonly=True,
                       shared_store=(shared if mode == "shared" else None),
                   ),
                   vm_config=_config("compiled"))
            for name, app in ordered
        ]
        host_compiles[mode] = sum(
            r.persistence_report["sidecar_host_compiles"] for r in results
        )
        shared_hits[mode] = sum(
            r.persistence_report["shared_hits"] for r in results
        )
        return results

    def extras() -> Dict[str, object]:
        return {
            "host_compiles_isolated": host_compiles["isolated"],
            "host_compiles_shared": host_compiles["shared"],
            "shared_hits_shared": shared_hits["shared"],
        }

    return sweep, extras


def _record_overhead_sweep() -> Callable[[str], list]:
    """Recording cost on plain GUI startup (acceptance: under 10%).

    ``plain`` runs with no persistence session at all; ``record``
    attaches a recording session (no database: the log is captured in
    memory, which is all the per-syscall cost there is — the baseline
    snapshot and write-out happen at store/access time, outside the
    10% criterion).  Results must be identical: recording never alters
    the run it observes.
    """
    apps, _store = build_gui_suite()
    ordered = sorted(apps.items())

    def sweep(mode: str) -> list:
        return [
            run_vm(app, "startup",
                   persistence=(PersistenceConfig(record=True)
                                if mode == "record" else None),
                   vm_config=_config("compiled"))
            for _name, app in ordered
        ]

    return sweep


def _indirect_heavy_sweep():
    """Indirect-branch-bound corpora, no persistence.

    Each corpus keeps one ``callr`` dispatch site hot with a different
    dynamic target population (two, three, eight) so the polymorphic IC
    chain is exercised at every depth — including overflow, where the
    megamorphic corpus must degrade to the dispatcher path rather than
    thrash.  The compiled run's per-corpus IC counters are reported so
    the chains' engagement is auditable (and CI-gateable) rather than
    inferred from the speedup alone.
    """
    from repro.workloads.indirect import build_indirect_suite

    corpora = sorted(build_indirect_suite().items())
    ic_per_corpus: Dict[str, Dict[str, object]] = {}

    def sweep(mode: str) -> list:
        results = []
        for name, workload in corpora:
            result = run_vm(workload, "run", vm_config=_config(mode))
            if mode == "compiled":
                ics = result.ic_stats
                ic_per_corpus[name] = {
                    "hits": ics.hits,
                    "misses": ics.misses,
                    "hit_rate": ics.hit_rate,
                    "promotions": ics.promotions,
                    "depth_hits": list(ics.depth_hits),
                }
            results.append(result)
        return results

    def extras() -> Dict[str, object]:
        return {
            "ic_per_corpus": ic_per_corpus,
            "ic_hits": sum(c["hits"] for c in ic_per_corpus.values()),
            "ic_misses": sum(c["misses"] for c in ic_per_corpus.values()),
        }

    return sweep, extras


def _trace_linking_sweep():
    """Chain-heavy corpora: linked vs. unlinked compiled dispatch.

    Both modes execute identical simulated work (the trampoline and the
    fused regions are host-side only), so ``identical_results`` compares
    nolink against linked, and ``oracle_identical`` additionally pins
    the linked tier against the interpreted oracle — a linked speedup
    can never come from skipped simulation.  The linked run's per-corpus
    link/region counters are reported so CI can gate on the machinery
    actually engaging (zero bounces, fused regions) rather than on the
    speedup alone.
    """
    from repro.workloads.chains import build_chain_suite

    corpora = sorted(build_chain_suite().items())
    oracle_sigs = {
        name: _result_signature(
            run_vm(workload, "run",
                   vm_config=VMConfig(dispatch_mode="interpreted"))
        )
        for name, workload in corpora
    }
    link_per_corpus: Dict[str, Dict[str, object]] = {}
    oracle_identical = {"value": True}

    def sweep(mode: str) -> list:
        linked = mode == "linked"
        results = []
        for name, workload in corpora:
            result = run_vm(
                workload, "run",
                vm_config=VMConfig(
                    dispatch_mode="compiled", trace_linking=linked
                ),
            )
            if linked:
                link_per_corpus[name] = result.link_stats.to_dict()
                if _result_signature(result) != oracle_sigs[name]:
                    oracle_identical["value"] = False
            results.append(result)
        return results

    def extras() -> Dict[str, object]:
        return {
            "oracle_identical": oracle_identical["value"],
            "link_per_corpus": link_per_corpus,
            "link_bounces": sum(
                c["link_bounces"] for c in link_per_corpus.values()
            ),
            "regions_fused": sum(
                c["regions_fused"] for c in link_per_corpus.values()
            ),
            "chained_exits": sum(
                c["chained_exits"] for c in link_per_corpus.values()
            ),
        }

    return sweep, extras


def _merge_existing(
    out_path: str, results: Dict[str, object]
) -> Dict[str, object]:
    """Merge this invocation's families into an existing results file.

    A selective ``--family`` run used to rewrite ``out_path`` wholesale,
    silently discarding every family measured by earlier invocations.
    Instead: families measured now win, families only present on disk
    are preserved, and ``host``/``config`` describe the current
    invocation (the old ones described runs being replaced anyway).  An
    absent or unparsable file degrades to a plain write.
    """
    try:
        with open(out_path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return results
    merged_workloads = dict(previous.get("workloads") or {})
    merged_workloads.update(results["workloads"])
    merged = dict(results)
    merged["workloads"] = merged_workloads
    return merged


def run_wallclock(
    scratch_dir: str,
    warmup: int = 2,
    reps: int = 3,
    families: Optional[Tuple[str, ...]] = None,
    out_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the wall-clock suite; return (and optionally write) results.

    Args:
        scratch_dir: Writable directory for the persistent-cache
            databases the fig5a family needs.
        warmup: Untimed repetitions per family per mode.
        reps: Timed repetitions per family per mode (score = min).
        families: Subset of family names to run (default: all).
        out_path: When given, the result dict is written there as JSON.
    """
    # Each builder yields (sweep, modes, extras): the two timed modes
    # (baseline first) and an optional post-measurement extras callable
    # whose keys are merged into the family dict.
    def _build_sidecar():
        sweep, extras = _sidecar_cold_warm_sweep(scratch_dir)
        return sweep, ("cold", "warm"), extras

    def _build_shared_store():
        sweep, extras = _shared_store_sweep(scratch_dir)
        return sweep, ("isolated", "shared"), extras

    def _build_indirect_heavy():
        sweep, extras = _indirect_heavy_sweep()
        return sweep, _MODES, extras

    def _build_trace_linking():
        sweep, extras = _trace_linking_sweep()
        return sweep, ("nolink", "linked"), extras

    builders: Dict[str, Callable[[], tuple]] = {
        "fig5a_gui": lambda: (_fig5a_gui_sweep(scratch_dir), _MODES, None),
        "fig2b_gui": lambda: (_fig2b_gui_sweep(), _MODES, None),
        "headline_spec": lambda: (_headline_spec_sweep(), _MODES, None),
        "sidecar_cold_warm": _build_sidecar,
        "shared_store": _build_shared_store,
        "indirect_heavy": _build_indirect_heavy,
        "trace_linking": _build_trace_linking,
        "record_overhead": lambda: (
            _record_overhead_sweep(), ("plain", "record"), None
        ),
    }
    selected = families if families is not None else tuple(builders)
    unknown = [name for name in selected if name not in builders]
    if unknown:
        raise ValueError("unknown bench families: %s" % ", ".join(unknown))

    workloads: Dict[str, object] = {}
    for name in selected:
        sweep, modes, extras = builders[name]()
        family = _measure_family(sweep, warmup, reps, modes=modes)
        if extras is not None:
            family.update(extras())
        workloads[name] = family

    results: Dict[str, object] = {
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {"warmup_reps": warmup, "timed_reps": reps},
        "workloads": workloads,
    }
    if out_path is not None:
        results = _merge_existing(out_path, results)
    # The gate reads the merged set, so a selective rerun that skipped
    # the gate workload still reports the last measured gate numbers.
    merged_workloads = results["workloads"]
    gate: Dict[str, object] = {
        "workload": GATE_WORKLOAD,
        "threshold_x": GATE_THRESHOLD_X,
    }
    results["gate"] = gate
    if GATE_WORKLOAD in merged_workloads:
        family = merged_workloads[GATE_WORKLOAD]
        # The gate reads the trimmed mean, not the best rep: a single
        # lucky repetition must not pass (or fail) the acceptance bar.
        trimmed = family.get("speedup_trimmed_x", family["speedup_x"])
        gate["speedup_x"] = family["speedup_x"]
        gate["speedup_trimmed_x"] = trimmed
        gate["pass"] = (
            family["identical_results"] and trimmed >= GATE_THRESHOLD_X
        )

    if out_path is not None:
        payload = json.dumps(results, indent=2, sort_keys=True) + "\n"
        with open(out_path, "w") as handle:
            handle.write(payload)
    return results


def default_output_path() -> str:
    """``BENCH_wallclock.json`` at the repository root (next to src/)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)),
                        "BENCH_wallclock.json")
