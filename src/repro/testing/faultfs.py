"""Injectable filesystem faults for the persistence layer.

The crash-consistency suite threads a :class:`FaultyStorage` through the
persist layer's storage seam (:mod:`repro.persist.storage`) to prove one
invariant: **every induced fault yields either a fully valid cache or a
clean JIT-only run with identical program output** — never a revived
trace from a damaged section, never a crash of the VM.

Fault classes, mirroring what real deployments see:

* **byte flips** — silent media corruption; applied directly to the file
  on disk (:func:`flip_byte`) or to the bytes returned by reads
  (:attr:`FaultPlan.flip_read_byte_at`);
* **truncation** — a torn file after power loss (:func:`truncate_file` /
  :attr:`FaultPlan.truncate_read_to`);
* **``ENOSPC``/``EIO`` on the Nth write** — a full or dying disk in the
  middle of a write-back (:attr:`FaultPlan.fail_write_on_call`), leaving
  a partial ``.tmp`` file exactly as a real kernel would;
* **kill between tmp-write and rename** — a crash at the worst point of
  the atomic write-replace protocol
  (:attr:`FaultPlan.crash_before_rename` raises
  :class:`SimulatedCrash`, which deliberately is *not* an ``OSError``:
  nothing in the production stack may catch it, because a killed process
  catches nothing).

Every primitive operation is counted (:attr:`FaultyStorage.op_counts`)
so tests can sweep "fail the Nth write" across *every* N a scenario
performs.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.persist.storage import FileStorage, StorageError


class InjectedIOError(StorageError):
    """An injected storage failure (an ``OSError``, like the real thing)."""

    def __init__(self, errno_value: int, operation: str, path: str = ""):
        super().__init__(
            errno_value,
            "injected %s failure (%s)" % (operation, errno.errorcode.get(
                errno_value, errno_value
            )),
            path or None,
        )
        self.operation = operation


class SimulatedCrash(BaseException):
    """The process was killed at this exact point.

    Derives from ``BaseException`` so no ``except Exception`` handler in
    the production stack can absorb it — a killed process does not get to
    run cleanup code.  Tests catch it explicitly and then re-open the
    database the way a fresh process would.
    """


@dataclass
class FaultPlan:
    """What to break, and when.

    All fields default to "no fault"; a default plan makes
    :class:`FaultyStorage` behave exactly like :class:`FileStorage`
    (modulo op counting).
    """

    #: Fail the Nth ``_write`` chunk (1-based, counted across the whole
    #: storage object) with :attr:`fail_write_errno`.
    fail_write_on_call: Optional[int] = None
    fail_write_errno: int = errno.ENOSPC
    #: Raise :class:`SimulatedCrash` instead of renaming the tmp file
    #: over the destination: the written data is complete in ``.tmp`` but
    #: never becomes visible.
    crash_before_rename: bool = False
    #: Fail the rename with an IO error instead of a crash.
    fail_rename_errno: Optional[int] = None
    #: XOR 0xFF into this offset of every matching read's result.
    flip_read_byte_at: Optional[int] = None
    #: Return only this many bytes from matching reads.
    truncate_read_to: Optional[int] = None
    #: Fail matching reads outright with ``EIO``.
    fail_reads: bool = False
    #: Only paths containing this substring are affected ("" = all).
    match: str = ""

    def applies_to(self, path: str) -> bool:
        return self.match in path


class FaultyStorage(FileStorage):
    """A :class:`FileStorage` that executes a :class:`FaultPlan`."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        self.op_counts: Dict[str, int] = {}
        #: (operation, path) log for assertions on ordering.
        self.log = []

    def _count(self, operation: str, path: str = "") -> int:
        self.op_counts[operation] = self.op_counts.get(operation, 0) + 1
        self.log.append((operation, path))
        return self.op_counts[operation]

    # -- faulted reads -------------------------------------------------------

    def read_bytes(self, path: str) -> bytes:
        self._count("read", path)
        plan = self.plan
        if plan.applies_to(path) and plan.fail_reads:
            raise InjectedIOError(errno.EIO, "read", path)
        data = super().read_bytes(path)
        if not plan.applies_to(path):
            return data
        if plan.truncate_read_to is not None:
            data = data[: plan.truncate_read_to]
        if plan.flip_read_byte_at is not None and data:
            offset = plan.flip_read_byte_at % len(data)
            data = data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]
        return data

    # -- faulted writes ------------------------------------------------------

    def _write(self, handle, chunk: bytes) -> None:
        calls = self._count("write", getattr(handle, "name", ""))
        plan = self.plan
        if (
            plan.fail_write_on_call is not None
            and calls >= plan.fail_write_on_call
            and plan.applies_to(getattr(handle, "name", ""))
        ):
            raise InjectedIOError(
                plan.fail_write_errno, "write", getattr(handle, "name", "")
            )
        super()._write(handle, chunk)

    def _rename(self, src: str, dst: str) -> None:
        self._count("rename", dst)
        plan = self.plan
        if plan.applies_to(dst):
            if plan.crash_before_rename:
                raise SimulatedCrash(
                    "process killed between tmp write and rename of %s" % dst
                )
            if plan.fail_rename_errno is not None:
                raise InjectedIOError(plan.fail_rename_errno, "rename", dst)
        super()._rename(src, dst)


# -- direct on-disk corruption helpers ---------------------------------------


def flip_byte(path: str, offset: int, mask: int = 0xFF) -> None:
    """XOR ``mask`` into one byte of the file at ``path`` (in place)."""
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            raise ValueError("cannot flip a byte of an empty file")
        offset %= size
        handle.seek(offset)
        original = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([original ^ (mask & 0xFF)]))


def truncate_file(path: str, length: int) -> None:
    """Cut the file at ``path`` down to ``length`` bytes (in place)."""
    with open(path, "r+b") as handle:
        handle.truncate(max(0, length))
