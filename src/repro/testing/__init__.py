"""Deterministic test harnesses for the reproduction.

Currently one member: :mod:`repro.testing.faultfs`, the injectable
filesystem shim the crash-consistency suite threads through the
persistence layer's storage seam.
"""

from repro.testing.faultfs import (
    FaultPlan,
    FaultyStorage,
    InjectedIOError,
    SimulatedCrash,
    flip_byte,
    truncate_file,
)

__all__ = [
    "FaultPlan",
    "FaultyStorage",
    "InjectedIOError",
    "SimulatedCrash",
    "flip_byte",
    "truncate_file",
]
