"""Memory-reference instrumentation (the paper's Oracle experiment).

"Instrumenting memory references without persistence extends execution by
4000 seconds, but with persistence it takes slightly over 1000 seconds
(~4x speedup)."  The tool inserts a callback before every load and store,
capturing the effective address — the most expensive common
instrumentation mode because memory operations are frequent and each
callback must materialize the address.
"""

from __future__ import annotations

from typing import List

from repro.vm.client import (
    AnalysisContext,
    InstrumentationPoint,
    PointKind,
    Tool,
)
from repro.vm.trace import Trace


class MemTraceTool(Tool):
    """Records counts (and optionally a bounded trace) of memory accesses."""

    name = "memtrace"
    version = "1.0"

    def __init__(
        self,
        work_cycles: float = 2.0,
        keep_addresses: int = 0,
    ):
        self.reads = 0
        self.writes = 0
        self.work_cycles = work_cycles
        #: Ring buffer of the most recent effective addresses (0 = off).
        self.keep_addresses = keep_addresses
        self.recent: List[int] = []

    def _record(self, context: AnalysisContext, is_write: bool) -> None:
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        if self.keep_addresses and context.effective_address is not None:
            self.recent.append(context.effective_address)
            if len(self.recent) > self.keep_addresses:
                del self.recent[: len(self.recent) - self.keep_addresses]

    def instrument_trace(self, trace: Trace) -> List[InstrumentationPoint]:
        points = []
        for index, inst in enumerate(trace.instructions):
            if not inst.is_memory:
                continue
            is_write = inst.opcode.name == "ST"

            def callback(context: AnalysisContext, _w: bool = is_write) -> None:
                self._record(context, _w)

            points.append(
                InstrumentationPoint(
                    kind=PointKind.BEFORE_INST,
                    index=index,
                    callback=callback,
                    work_cycles=self.work_cycles,
                    label="memwrite" if is_write else "memread",
                    wants_effective_address=True,
                    compile_weight=6.0,
                )
            )
        return points

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes
