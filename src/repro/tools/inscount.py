"""Instruction-counting tool — the classic first PinTool.

One analysis call per trace entry adds the trace's instruction count; a
cheap tool useful as the minimal-instrumentation configuration in
overhead studies.
"""

from __future__ import annotations

from typing import List

from repro.vm.client import (
    AnalysisContext,
    InstrumentationPoint,
    PointKind,
    Tool,
)
from repro.vm.trace import Trace


class InsCountTool(Tool):
    """Counts (approximately) executed instructions, one call per trace.

    The per-trace counter adds the full trace length at entry, so the
    count is exact only for traces that run to their last exit — the same
    fast-but-approximate counting mode Pin's inscount2 example uses.
    """

    name = "inscount"
    version = "1.0"

    def __init__(self, work_cycles: float = 1.0):
        self.count = 0
        self.work_cycles = work_cycles
        self._trace_lengths = {}

    def instrument_trace(self, trace: Trace) -> List[InstrumentationPoint]:
        self._trace_lengths[trace.entry] = len(trace.instructions)

        def bump(context: AnalysisContext) -> None:
            self.count += self._trace_lengths.get(context.trace_entry, 0)

        return [
            InstrumentationPoint(
                kind=PointKind.TRACE_ENTRY,
                index=0,
                callback=bump,
                work_cycles=self.work_cycles,
                label="inscount",
            )
        ]
