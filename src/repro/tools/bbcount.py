"""Basic-block profiling tool (the paper's Figure 5(b) instrumentation).

"Detailed basic block profiling increases VM overhead by as much as 25%"
— the tool inserts a counting callback at the head of every basic block
within each trace, adding both compile-time cost (more code to generate)
and run-time analysis cost (a counter bump per executed block).

Basic-block heads within a trace are: the trace entry, plus every
instruction following a conditional branch (the fall-through side starts
a new block).
"""

from __future__ import annotations

from typing import Dict, List

from repro.vm.client import (
    AnalysisContext,
    InstrumentationPoint,
    PointKind,
    Tool,
)
from repro.vm.trace import Trace


class BBCountTool(Tool):
    """Counts executions of every basic block."""

    name = "bbcount"
    version = "1.0"

    def __init__(self, work_cycles: float = 1.5):
        #: Execution count per basic-block head address.
        self.block_counts: Dict[int, int] = {}
        self.work_cycles = work_cycles

    def _bump(self, context: AnalysisContext) -> None:
        address = context.address
        self.block_counts[address] = self.block_counts.get(address, 0) + 1

    def instrument_trace(self, trace: Trace) -> List[InstrumentationPoint]:
        heads = {0}
        for index, inst in enumerate(trace.instructions):
            if inst.is_conditional_branch and index + 1 < len(trace.instructions):
                heads.add(index + 1)
        return [
            InstrumentationPoint(
                kind=PointKind.TRACE_ENTRY if index == 0 else PointKind.BEFORE_INST,
                index=index,
                callback=self._bump,
                work_cycles=self.work_cycles,
                label="bbcount",
            )
            for index in sorted(heads)
        ]

    def total_blocks_executed(self) -> int:
        return sum(self.block_counts.values())

    def hottest_blocks(self, count: int = 10) -> List[tuple]:
        """(address, executions) pairs, hottest first."""
        ranked = sorted(
            self.block_counts.items(), key=lambda item: item[1], reverse=True
        )
        return ranked[:count]
