"""Example instrumentation tools (PinTool analogs)."""

from repro.tools.bbcount import BBCountTool
from repro.tools.coverage import CoverageTool
from repro.tools.inscount import InsCountTool
from repro.tools.memtrace import MemTraceTool

__all__ = [
    "BBCountTool",
    "CoverageTool",
    "InsCountTool",
    "MemTraceTool",
]
