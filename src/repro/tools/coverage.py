"""Code-coverage collection tool.

Regression-testing services like code-coverage characterization are the
paper's motivating use of run-time instrumentation in test environments
(§2.2).  The tool records which original instructions executed, per image,
and can report coverage as executed-bytes per image — the measurement
behind the cross-input coverage tables.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.vm.client import (
    AnalysisContext,
    InstrumentationPoint,
    PointKind,
    Tool,
)
from repro.vm.trace import Trace


class CoverageTool(Tool):
    """Records executed original-code addresses (trace granularity).

    One callback per trace entry marks the whole trace as covered —
    sufficient for trace-level coverage, at a fraction of per-instruction
    instrumentation cost.
    """

    name = "coverage"
    version = "1.0"

    def __init__(self, work_cycles: float = 2.0):
        #: (image_path, image_offset, size) of every executed trace.
        self.covered: Set[Tuple[str, int, int]] = set()
        self.work_cycles = work_cycles
        self._trace_info: Dict[int, Tuple[str, int, int]] = {}

    def instrument_trace(self, trace: Trace) -> List[InstrumentationPoint]:
        self._trace_info[trace.entry] = (
            trace.image_path,
            trace.entry - trace.image_base,
            trace.size,
        )

        def mark(context: AnalysisContext) -> None:
            info = self._trace_info.get(context.trace_entry)
            if info is not None:
                self.covered.add(info)

        return [
            InstrumentationPoint(
                kind=PointKind.TRACE_ENTRY,
                index=0,
                callback=mark,
                work_cycles=self.work_cycles,
                label="coverage",
            )
        ]

    def covered_bytes_by_image(self) -> Dict[str, int]:
        """Executed bytes per image path."""
        totals: Dict[str, int] = {}
        for path, _offset, size in self.covered:
            totals[path] = totals.get(path, 0) + size
        return totals

    def covered_bytes(self) -> int:
        return sum(size for _path, _offset, size in self.covered)
