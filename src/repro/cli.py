"""Command-line interface.

Usage::

    python -m repro list
    python -m repro run spec 176.gcc ref-1
    python -m repro run gui gftp startup --pcache /tmp/db
    python -m repro run gui gqview startup --pcache /tmp/db --inter-app
    python -m repro run oracle oracle Work --tool memtrace --pcache /tmp/db
    python -m repro run shell ls run --pcache /tmp/db
    python -m repro run gui gftp startup --pcache /tmp/db2 --shared-store /tmp/shared-store
    python -m repro run nondet dice short --record --pcache /tmp/db
    python -m repro replay /tmp/db --diff
    python -m repro replay /tmp/db --log dice-short-0000.pcrl --mode compiled
    python -m repro timeline spec 176.gcc ref-1
    python -m repro pcache list /tmp/db
    python -m repro pcache show /tmp/db --index 0
    python -m repro cache fsck /tmp/db
    python -m repro cache fsck /tmp/db --quarantine
    python -m repro cache fsck /tmp/shared-store
    python -m repro cache gc /tmp/shared-store --json
    python -m repro cache gc /tmp/shared-store --max-bytes 1048576
    python -m repro bench --reps 5 --check
    python -m repro disasm path/to/image.sbf

``run`` executes a workload input natively or under the DBI engine
(optionally with instrumentation and a persistent-cache database) and
prints the cycle breakdown; ``run --record`` captures the session's
nondeterminism into a PCRL1 replay log; ``replay`` re-runs recorded
sessions against the current build and diffs them against their
recorded baselines; ``pcache`` inspects cache databases; ``timeline``
renders the Figure 2(a)-style translation-request timeline.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Optional

from repro import __version__
from repro.analysis.report import format_table
from repro.analysis.timeline import render_timeline, summarize_timeline
from repro.binfmt.image import Image
from repro.isa.disassembler import disassemble
from repro.loader.layout import FixedLayout, PerturbedLayout
from repro.persist.cachefile import PersistentCache
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.tools import BBCountTool, CoverageTool, InsCountTool, MemTraceTool
from repro.vm.client import NullTool
from repro.workloads.gui import build_gui_suite
from repro.workloads.harness import Workload, run_native, run_vm
from repro.workloads.oracle import build_oracle
from repro.workloads.shell import build_shell_suite
from repro.workloads.spec2k import build_suite

_TOOLS = {
    "none": lambda: None,
    "null": NullTool,
    "bbcount": BBCountTool,
    "inscount": InsCountTool,
    "memtrace": MemTraceTool,
    "coverage": CoverageTool,
}


def _load_workloads(suite: str) -> Dict[str, Workload]:
    """Build the named workload suite."""
    if suite == "spec":
        return build_suite()
    if suite == "gui":
        apps, _store = build_gui_suite()
        return apps
    if suite == "oracle":
        return {"oracle": build_oracle()}
    if suite == "shell":
        tools, _store = build_shell_suite()
        return tools
    if suite == "nondet":
        from repro.workloads.nondet import build_nondet_suite

        return build_nondet_suite()
    raise SystemExit(
        "unknown suite %r (choose: spec, gui, oracle, shell, nondet)" % suite
    )


def _resolve(suite: str, name: str) -> Workload:
    workloads = _load_workloads(suite)
    if name not in workloads:
        raise SystemExit(
            "no workload %r in suite %r (have: %s)"
            % (name, suite, ", ".join(sorted(workloads)))
        )
    return workloads[name]


def _layout(seed: Optional[int]):
    return FixedLayout() if seed is None else PerturbedLayout(seed)


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------

def cmd_list(args) -> int:
    """``repro list``: print every suite, workload and input."""
    rows = []
    for suite in ("spec", "gui", "oracle", "shell", "nondet"):
        for name, workload in sorted(_load_workloads(suite).items()):
            rows.append(
                {
                    "suite": suite,
                    "workload": name,
                    "inputs": " ".join(sorted(workload.inputs)),
                }
            )
    print(format_table(rows, columns=["suite", "workload", "inputs"]))
    return 0


def cmd_run(args) -> int:
    """``repro run``: execute one workload input and print stats."""
    workload = _resolve(args.suite, args.workload)
    layout = _layout(args.layout_seed)

    if args.native:
        if args.record:
            raise SystemExit("--record requires the VM (drop --native)")
        result = run_native(workload, args.input, layout=layout)
        print("exit status:  %d" % result.exit_status)
        print("instructions: %d" % result.instructions)
        print("cycles:       %.0f" % result.cycles)
        return 0

    tool_factory = _TOOLS[args.tool]
    persistence = None
    if args.record:
        # Recording sessions are persistence-neutral: the cache tiers
        # stay off so the captured result is a pure function of the
        # program and the logged nondeterminism.
        if args.inter_app or args.pic or args.readonly or args.shared_store:
            raise SystemExit(
                "--record disables the cache tiers; drop --inter-app/"
                "--pic/--readonly/--shared-store"
            )
        persistence = PersistenceConfig(
            database=CacheDatabase(args.pcache) if args.pcache else None,
            record=True,
            record_meta={
                "name": "%s-%s" % (args.workload, args.input),
                "suite": args.suite,
                "workload": args.workload,
                "input": args.input,
                "tool_name": args.tool,
                "layout_seed": args.layout_seed,
            },
        )
    elif args.pcache:
        shared = None
        if args.shared_store:
            # ``daemon://DIR`` (or REPRO_CACHE_DAEMON in the environment)
            # selects the cache-server transport; a plain directory keeps
            # the flock store.  Both fall back to the files when no
            # daemon is listening.
            from repro.persist.daemon import resolve_shared_store
            from repro.vm.engine import VM_VERSION

            shared = resolve_shared_store(args.shared_store, VM_VERSION)
        persistence = PersistenceConfig(
            database=CacheDatabase(args.pcache, shared_store=shared),
            inter_application=args.inter_app,
            relocatable=args.pic,
            readonly=args.readonly,
        )
    result = run_vm(
        workload,
        args.input,
        tool=tool_factory(),
        persistence=persistence,
        layout=layout,
    )
    print("exit status:  %d" % result.exit_status)
    print("instructions: %d" % result.instructions)
    stats = result.stats
    for key, value in stats.breakdown().items():
        print("%-16s %12.0f cycles" % (key, value))
    print("traces translated:      %d" % stats.traces_translated)
    print("traces from pcache:     %d" % stats.traces_from_persistent)
    print("vm overhead fraction:   %.1f%%" % (100 * stats.overhead_fraction()))
    if args.record:
        report = result.persistence_report or {}
        line = "recording: %s (%d events)" % (
            report.get("record_state", "?"), report.get("record_events", 0)
        )
        if report.get("record_log"):
            line += " -> %s" % report["record_log"]
        print(line)
    elif result.persistence_report:
        print("persistence: %s" % result.persistence_report)
    return 0


def cmd_replay(args) -> int:
    """``repro replay``: replay recorded sessions against this build.

    With ``--log NAME`` one stored log is replayed (under ``--mode``,
    default both dispatch tiers) and its result diffed against the
    recorded baseline.  ``--diff`` sweeps every log in the database
    through :class:`~repro.replay.harness.DifferentialReplayHarness`.
    Exit code 0 only when every replay is bit-identical; structural
    divergence, result drift, and unreadable logs all exit 1.
    """
    from repro.replay.harness import (
        REPLAY_MODES,
        DifferentialReplayHarness,
        replay_session,
        resolve_standard,
    )
    from repro.replay.session import ReplayDivergence

    db = CacheDatabase(args.directory)
    modes = REPLAY_MODES if args.mode == "both" else (args.mode,)

    if args.log and not args.diff:
        log = db.load_replay_log(args.log)
        workload, input_name, tool_factory = resolve_standard(log.meta)
        failures = 0
        for mode in modes:
            try:
                outcome = replay_session(
                    log, workload, input_name, tool=tool_factory(),
                    dispatch_mode=mode,
                )
            except ReplayDivergence as exc:
                print("%s [%s]: DIVERGENCE: %s" % (args.log, mode, exc))
                failures += 1
                continue
            if outcome.bit_identical:
                print("%s [%s]: bit-identical" % (args.log, mode))
            else:
                failures += 1
                print("%s [%s]: %d field(s) differ"
                      % (args.log, mode, len(outcome.diff)))
                for line in outcome.diff:
                    print("  %s" % line)
        return 1 if failures else 0

    report = DifferentialReplayHarness(db).replay_all(modes=modes)
    if not report.outcomes:
        print("(no replay logs in %s)" % args.directory)
        return 0
    rows = [
        {
            "log": outcome.log_name,
            "mode": outcome.mode,
            "status": outcome.status,
            "detail": (outcome.detail or "; ".join(outcome.diff[:2]) or "-"),
        }
        for outcome in report.outcomes
    ]
    print(format_table(rows, columns=["log", "mode", "status", "detail"]))
    counts = report.counts()
    print("replay: %s (%s)" % (
        "clean" if report.clean else "drift found",
        ", ".join("%d %s" % (counts[k], k) for k in sorted(counts)),
    ))
    return 0 if report.clean else 1


def cmd_timeline(args) -> int:
    """``repro timeline``: render the translation timeline."""
    workload = _resolve(args.suite, args.workload)
    result = run_vm(workload, args.input)
    summary = summarize_timeline(result.stats)
    print("[%s]" % render_timeline(result.stats, width=args.width))
    print(
        "%d translation events; %.0f%% in the first decile, %.0f%% in the "
        "last half; VM overhead %.0f%%"
        % (
            summary.total_events,
            100 * summary.early_fraction,
            100 * summary.late_fraction,
            100 * result.stats.overhead_fraction(),
        )
    )
    return 0


def cmd_pcache_list(args) -> int:
    """``repro pcache list``: print the database index."""
    db = CacheDatabase(args.directory)
    rows = [
        {
            "app": entry.app_path,
            "traces": entry.trace_count,
            "bytes": entry.file_size,
            "file": entry.filename,
        }
        for entry in db.entries()
    ]
    if not rows:
        print("(empty database)")
        return 0
    print(format_table(rows, columns=["app", "traces", "bytes", "file"]))
    return 0


def cmd_pcache_show(args) -> int:
    """``repro pcache show``: dump one cache file's contents."""
    db = CacheDatabase(args.directory)
    entries = db.entries()
    if not entries:
        raise SystemExit("empty database")
    if not 0 <= args.index < len(entries):
        raise SystemExit("index out of range (0..%d)" % (len(entries) - 1))
    entry = entries[args.index]
    cache = PersistentCache.load(os.path.join(args.directory, entry.filename))
    print("app:          %s" % cache.app_path)
    print("vm version:   %s" % cache.vm_version)
    print("tool:         %s" % cache.tool_identity[:16])
    print("generation:   %d" % cache.generation)
    print("traces:       %d" % len(cache.traces))
    print("code pool:    %d bytes" % cache.total_code_bytes)
    print("data pool:    %d bytes" % cache.total_data_bytes)
    print("image keys:")
    for path, key in sorted(cache.image_keys.items()):
        print("  %-24s base=0x%x size=%d mtime=%d" % (path, key.base, key.size, key.mtime))
    by_image: Dict[str, int] = {}
    for trace in cache.traces:
        by_image[trace.image_path] = by_image.get(trace.image_path, 0) + 1
    print("traces by image:")
    for path, count in sorted(by_image.items()):
        print("  %-24s %d" % (path, count))
    return 0


def _fsck_shared_store(args) -> int:
    """``repro cache fsck`` against a shared compiled-body store.

    Same contract as the database form: exit 0 when healthy, 1 on
    damage; stale keytag pools and leftover ``.tmp`` files are notes.
    """
    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.engine import VM_VERSION

    store = SharedBodyStore(args.directory, vm_version=VM_VERSION)
    report = store.fsck(quarantine=args.quarantine)
    if not report.items and not report.notes:
        print("(empty shared store: nothing to check)")
        return 0
    rows = [
        {
            "file": item.filename,
            "status": item.status,
            "section": item.section or "-",
            "detail": item.detail or "-",
        }
        for item in report.items
    ]
    if rows:
        print(format_table(rows, columns=["file", "status", "section", "detail"]))
    for note in report.notes:
        print("note: %s %s: %s" % (note.filename, note.status,
                                   note.detail or ""))
    for filename in report.quarantined:
        print("quarantined: %s" % filename)
    print("fsck: %s" % ("clean" if report.clean else "damage found"))
    return 0 if report.clean else 1


def cmd_cache_fsck(args) -> int:
    """``repro cache fsck``: validate every cache file section by section.

    Exit code 0 when the database is fully healthy, 1 when any damage,
    orphan, or interrupted write was found.  ``--quarantine`` moves
    damaged indexed files into the ``quarantine/`` subdirectory (never
    deletes them) and drops them from the index.  Pointed at a shared
    compiled-body store directory instead of a database, it validates
    every shard of every pool.
    """
    from repro.persist.sharedstore import is_shared_store

    if is_shared_store(args.directory):
        return _fsck_shared_store(args)
    db = CacheDatabase(args.directory)
    for kind, filename, reason in db.events:
        # Damage found while merely opening the database (corrupt index).
        print("%-12s %s: %s" % (kind, filename, reason))
    report = db.fsck(quarantine=args.quarantine)
    if not report.items and not report.notes and not db.events:
        print("(empty database: nothing to check)")
        return 0
    rows = [
        {
            "file": item.filename,
            "status": item.status,
            "section": item.section or "-",
            "detail": item.detail or "-",
        }
        for item in report.items
    ]
    if rows:
        print(format_table(rows, columns=["file", "status", "section", "detail"]))
    for note in report.notes:
        # Informational findings (stale or orphaned sidecar): worth
        # surfacing, but not damage — they never flip the exit code.
        print("note: %s %s: %s" % (note.filename, note.status,
                                   note.detail or ""))
    for filename in report.quarantined:
        print("quarantined: %s" % filename)
    healthy = report.clean and not db.events
    print("fsck: %s" % ("clean" if healthy else "damage found"))
    return 0 if healthy else 1


def cmd_cache_gc(args) -> int:
    """``repro cache gc``: mark-and-sweep a shared compiled-body store.

    Marks every digest referenced by a registered database's private
    sidecar, sweeps unmarked bodies shard by shard, removes pools keyed
    for other VM versions wholesale, and (with ``--max-bytes``) evicts
    least-recently-used bodies until the pool fits.  ``--db`` registers
    extra databases before marking.  Always exits 0 on a completed run
    (an unreadable reference index is reported, not fatal: eviction can
    only cost a recompile); ``--json`` prints the machine-readable
    report.
    """
    import json as json_module

    from repro.persist.sharedstore import SharedBodyStore
    from repro.vm.engine import VM_VERSION

    store = SharedBodyStore(args.directory, vm_version=VM_VERSION)
    for db_dir in args.db or []:
        store.register_database(db_dir)
    report = store.gc(max_bytes=args.max_bytes)
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    print("registered databases:  %d" % len(report.registered_databases))
    print("referenced digests:    %d" % report.referenced)
    print("scanned:               %d bodies, %d bytes"
          % (report.scanned_entries, report.scanned_bytes))
    print("swept (unreferenced):  %d bodies, %d bytes"
          % (report.swept_entries, report.swept_bytes))
    print("evicted (LRU cap):     %d bodies, %d bytes"
          % (report.lru_evicted_entries, report.lru_evicted_bytes))
    print("stale pools removed:   %d" % len(report.stale_pools_removed))
    print("remaining:             %d bodies, %d bytes"
          % (report.remaining_entries, report.remaining_bytes))
    for shard in report.quarantined_shards:
        print("quarantined: %s" % shard)
    for db_dir in report.unreadable_indexes:
        print("warning: unreadable reference index: %s" % db_dir)
    return 0


def cmd_cache_serve(args) -> int:
    """``repro cache serve``: the per-host cache-server daemon.

    Foreground by default (^C flushes and exits cleanly).  ``--detach``
    spawns the daemon as its own session with output to
    ``DIR/daemon.log`` and waits until it answers a ping; ``--status``
    pings a running daemon; ``--stop`` asks one to flush and exit.  The
    daemon serves exactly one store directory, and sessions attach with
    ``--shared-store daemon://DIR`` (or ``REPRO_CACHE_DAEMON=1``).
    """
    import json as json_module
    import subprocess
    import time as time_module

    from repro.persist.cacheserver import CacheServer, default_socket_path
    from repro.persist.daemon import DaemonClient, DaemonError
    from repro.vm.engine import VM_VERSION

    address = args.socket or default_socket_path(args.directory)

    if args.status or args.stop:
        client = DaemonClient(address, vm_version=VM_VERSION)
        try:
            if args.stop:
                client.request("shutdown")
                # The daemon tears down (final flush, socket unlink)
                # within its poll interval; wait until pings fail so
                # "stop" returning means "stopped".
                deadline = time_module.monotonic() + 10.0
                while time_module.monotonic() < deadline:
                    probe = DaemonClient(address, vm_version=VM_VERSION,
                                         timeout_s=0.5)
                    try:
                        probe.ping()
                    except DaemonError:
                        break
                    finally:
                        probe.close()
                    time_module.sleep(0.1)
                print("daemon at %s stopped" % address)
                return 0
            meta = client.ping()
        except DaemonError as exc:
            print("no daemon at %s (%s)" % (address, exc), file=sys.stderr)
            return 1
        finally:
            client.close()
        if args.json:
            print(json_module.dumps(meta, indent=2, sort_keys=True))
        else:
            print(
                "daemon pid %s at %s: %s entries (%s bytes hot, %s dirty)"
                % (meta.get("pid"), address, meta.get("entries"),
                   meta.get("hot_bytes"), meta.get("dirty"))
            )
        return 0

    if args.detach:
        os.makedirs(args.directory, exist_ok=True)
        log_path = os.path.join(args.directory, "daemon.log")
        command = [sys.executable, "-m", "repro", "cache", "serve",
                   args.directory, "--socket", address]
        if args.max_bytes is not None:
            command += ["--max-bytes", str(args.max_bytes)]
        command += ["--flush-interval", str(args.flush_interval)]
        with open(log_path, "ab") as log:
            subprocess.Popen(
                command, stdout=log, stderr=log,
                stdin=subprocess.DEVNULL, start_new_session=True,
            )
        deadline = time_module.monotonic() + 15.0
        while time_module.monotonic() < deadline:
            probe = DaemonClient(address, vm_version=VM_VERSION,
                                 timeout_s=0.5)
            try:
                meta = probe.ping()
            except DaemonError:
                time_module.sleep(0.1)
                continue
            finally:
                probe.close()
            print("daemon pid %s serving %s at %s (%s entries warm)"
                  % (meta.get("pid"), args.directory, address,
                     meta.get("entries")))
            return 0
        print("daemon did not come up at %s (see %s)" % (address, log_path),
              file=sys.stderr)
        return 1

    server = CacheServer(
        args.directory,
        vm_version=VM_VERSION,
        address=address,
        max_bytes=args.max_bytes,
        flush_interval_s=args.flush_interval,
    )
    try:
        bound = server.start()
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print("serving %s at %s (%d entries warm); ^C to stop"
          % (args.directory, bound, len(server.hot_entries())))
    try:
        while not server._shutdown.wait(0.2):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: wall-clock dispatch-tier benchmark suite."""
    import tempfile

    from repro.bench import (
        GATE_THRESHOLD_X,
        GATE_WORKLOAD,
        default_output_path,
        run_wallclock,
    )

    out_path = args.out or default_output_path()
    families = tuple(args.family) if args.family else None
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
        results = run_wallclock(
            scratch_dir=scratch,
            warmup=args.warmup,
            reps=args.reps,
            families=families,
            out_path=out_path,
        )

    def ttfo_cell(family, baseline, contender):
        """Per-family time-to-first-output column: baseline/contender."""
        base = family.get("%s_ttfo_s" % baseline)
        cont = family.get("%s_ttfo_s" % contender)
        if base is None or cont is None:
            return "-"
        return "%.3f/%.3f" % (base, cont)

    tier_rows, sidecar_rows, shared_rows, record_rows = [], [], [], []
    link_rows, warmup_rows, fleet_rows, transparency_rows = [], [], [], []
    for name, family in sorted(results["workloads"].items()):
        if "sync_s" in family:
            # The tiered-warmup family's headline is TTFO, not sweep
            # time: background compilation drains its queue before a
            # run returns, so total wall clock is a wash by design.
            warmup_rows.append(
                {
                    "workload": name,
                    "sync_ttfo_s": "%.3f" % family["sync_ttfo_s"],
                    "bg_ttfo_s": "%.3f" % family["background_ttfo_s"],
                    "ttfo_ratio": "%.2f" % family["ttfo_ratio_x"],
                    "warm_compiles": "%d" % (
                        family["prewarm_warm_host_compiles"]
                    ),
                    "jobs_mono": str(family["jobs_monotonic_ok"]),
                    "identical": str(
                        family["identical_results"]
                        and family["oracle_identical"]
                    ),
                }
            )
        elif "nolink_s" in family:
            # The trace-linking family compares the compiled tier
            # against itself with linking + fusion disabled; the
            # headline number is the trimmed-mean speedup.
            link_rows.append(
                {
                    "workload": name,
                    "nolink_s": "%.3f" % family["nolink_s"],
                    "linked_s": "%.3f" % family["linked_s"],
                    "speedup_x": "%.2f" % family["speedup_trimmed_x"],
                    "bounces": "%d" % family["link_bounces"],
                    "regions": "%d" % family["regions_fused"],
                    "ttfo_s": ttfo_cell(family, "nolink", "linked"),
                    "identical": str(
                        family["identical_results"]
                        and family["oracle_identical"]
                    ),
                }
            )
        elif "isolated_s" in family:
            # The shared-store family times a never-warmed database's
            # cold run with vs. without the per-host body pool.
            shared_rows.append(
                {
                    "workload": name,
                    "isolated_s": "%.3f" % family["isolated_s"],
                    "shared_s": "%.3f" % family["shared_s"],
                    "speedup_x": "%.2f" % family["speedup_x"],
                    "host_compiles": "%d/%d" % (
                        family["host_compiles_isolated"],
                        family["host_compiles_shared"],
                    ),
                    "shared_hits": "%d" % family["shared_hits_shared"],
                    "ttfo_s": ttfo_cell(family, "isolated", "shared"),
                    "identical": str(family["identical_results"]),
                }
            )
        elif "flock_s" in family:
            # The fleet-warmup family times an N-process warm fleet
            # over the flock files vs. the cache-server daemon; the
            # per-lookup p50 latencies are the daemon's headline.
            fleet_rows.append(
                {
                    "workload": name,
                    "flock_s": "%.3f" % family["flock_s"],
                    "daemon_s": "%.3f" % family["daemon_s"],
                    "procs": "%d" % family["fleet_processes"],
                    "host_compiles": "%d/%d" % (
                        family["fleet_host_compiles_flock"],
                        family["fleet_host_compiles_daemon"],
                    ),
                    "lookup_p50_us": "%.1f/%.1f" % (
                        family["flock_lookup_p50_us"],
                        family["daemon_lookup_p50_us"],
                    ),
                    "fallback": str(family["fallback_ok"]),
                    "identical": str(family["identical_results"]),
                }
            )
        elif "plain_s" in family:
            # The record-overhead family times plain vs. recording runs;
            # the interesting number is the relative cost, not a speedup.
            record_rows.append(
                {
                    "workload": name,
                    "plain_s": "%.3f" % family["plain_s"],
                    "record_s": "%.3f" % family["record_s"],
                    "overhead": "%.1f%%" % (
                        100.0 * (family["record_s"] / family["plain_s"] - 1.0)
                    ),
                    "ttfo_s": ttfo_cell(family, "plain", "record"),
                    "identical": str(family["identical_results"]),
                }
            )
        elif "stale_reads" in family:
            # The transparency family's headline is the audit, not the
            # sweep time: oracle identity across dispatch tiers, zero
            # stale code-byte reads, engaged SMC detection, and
            # bit-identical warm restarts over every transport.
            churn_smc = family.get("churn_smc") or {}
            transparency_rows.append(
                {
                    "workload": name,
                    "interpreted_s": "%.3f" % family["interpreted_s"],
                    "compiled_s": "%.3f" % family["compiled_s"],
                    "stale_reads": "%d" % family["stale_reads"],
                    "smc_inval": "%d" % sum(churn_smc.values()),
                    "warm": str(family["warm_identical"]),
                    "ttfo_s": ttfo_cell(family, "interpreted", "compiled"),
                    "identical": str(
                        family["identical_results"]
                        and family["oracle_identical"]
                    ),
                }
            )
        elif "interpreted_s" in family:
            tier_rows.append(
                {
                    "workload": name,
                    "interpreted_s": "%.3f" % family["interpreted_s"],
                    "compiled_s": "%.3f" % family["compiled_s"],
                    "speedup_x": "%.2f" % family["speedup_x"],
                    "spread": "%.0f%%/%.0f%%" % (
                        family["interpreted_spread_pct"],
                        family["compiled_spread_pct"],
                    ),
                    "ttfo_s": ttfo_cell(family, "interpreted", "compiled"),
                    "identical": str(family["identical_results"]),
                }
            )
        else:
            # The sidecar family times cold vs. warm host-compile cost
            # under the compiled tier, so its columns differ.
            sidecar_rows.append(
                {
                    "workload": name,
                    "cold_s": "%.3f" % family["cold_s"],
                    "warm_s": "%.3f" % family["warm_s"],
                    "speedup_x": "%.2f" % family["speedup_x"],
                    "host_compiles": "%d/%d" % (
                        family["host_compiles_cold"],
                        family["host_compiles_warm"],
                    ),
                    "ttfo_s": ttfo_cell(family, "cold", "warm"),
                    "identical": str(family["identical_results"]),
                }
            )
    if tier_rows:
        print(format_table(
            tier_rows,
            columns=["workload", "interpreted_s", "compiled_s", "speedup_x",
                     "spread", "ttfo_s", "identical"],
            title="Wall-clock dispatch benchmark (best of %d, %d warmup)"
                  % (args.reps, args.warmup),
        ))
    if sidecar_rows:
        print(format_table(
            sidecar_rows,
            columns=["workload", "cold_s", "warm_s", "speedup_x",
                     "host_compiles", "ttfo_s", "identical"],
            title="Compiled-body sidecar: cold vs. warm host compile()",
        ))
    if shared_rows:
        print(format_table(
            shared_rows,
            columns=["workload", "isolated_s", "shared_s", "speedup_x",
                     "host_compiles", "shared_hits", "ttfo_s", "identical"],
            title="Shared per-host store: DB-A warms DB-B",
        ))
    if record_rows:
        print(format_table(
            record_rows,
            columns=["workload", "plain_s", "record_s", "overhead",
                     "ttfo_s", "identical"],
            title="Recording overhead: plain vs. record-enabled runs",
        ))
    if link_rows:
        print(format_table(
            link_rows,
            columns=["workload", "nolink_s", "linked_s", "speedup_x",
                     "bounces", "regions", "ttfo_s", "identical"],
            title="Trace linking + superblock fusion "
                  "(trimmed-mean speedup)",
        ))
    if warmup_rows:
        print(format_table(
            warmup_rows,
            columns=["workload", "sync_ttfo_s", "bg_ttfo_s", "ttfo_ratio",
                     "warm_compiles", "jobs_mono", "identical"],
            title="Tiered warm-up: background compile queue "
                  "(time-to-first-output)",
        ))
    if fleet_rows:
        print(format_table(
            fleet_rows,
            columns=["workload", "flock_s", "daemon_s", "procs",
                     "host_compiles", "lookup_p50_us", "fallback",
                     "identical"],
            title="Fleet warm-up: flock store vs. cache-server daemon "
                  "(per-lookup p50 flock/daemon)",
        ))
    if transparency_rows:
        print(format_table(
            transparency_rows,
            columns=["workload", "interpreted_s", "compiled_s",
                     "stale_reads", "smc_inval", "warm", "ttfo_s",
                     "identical"],
            title="Transparency under attack: anti-instrumentation corpus",
        ))
        tr_family = results["workloads"].get("transparency")
        if tr_family and tr_family.get("churn_smc"):
            print("transparency SMC churners (interpreted oracle):")
            for corpus, count in sorted(tr_family["churn_smc"].items()):
                print("  %-15s invalidations %d" % (corpus, count))
    tw_family = results["workloads"].get("tiered_warmup")
    if tw_family and tw_family.get("prewarm_jobs_sweep"):
        queue = tw_family.get("queue") or {}
        print(
            "tiered_warmup queue (gate app, cold): enqueued %d  "
            "off-path %d  interpreted runs %d  full-queue syncs %d  "
            "backlog high-water %d"
            % (queue.get("enqueued", 0), queue.get("compiled_offpath", 0),
               queue.get("interpreted_runs", 0),
               queue.get("queue_full_syncs", 0),
               queue.get("backlog_high_water", 0))
        )
        print("prewarm cold-sweep wall clock (%d cores):"
              % tw_family.get("cpu_count", 1))
        for row in tw_family["prewarm_jobs_sweep"]:
            print(
                "  --jobs %d  %.2fs  compiled %d  admitted %d%s"
                % (row["jobs"], row["wall_s"], row["compiled"],
                   row["admitted"],
                   "" if row.get("monotonic_ok", True) else "  (regressed)")
            )
    tl_family = results["workloads"].get("trace_linking")
    if tl_family and tl_family.get("link_per_corpus"):
        print("trace_linking chain corpora (linked compiled tier):")
        for corpus, link in sorted(tl_family["link_per_corpus"].items()):
            print(
                "  %-10s direct hops %-7d region entries/hops %d/%d  "
                "fused %d  bounces %d"
                % (corpus, link["link_direct_hops"],
                   link["region_entries"], link["region_hops"],
                   link["regions_fused"], link["link_bounces"])
            )
    ih_family = results["workloads"].get("indirect_heavy")
    if ih_family and ih_family.get("ic_per_corpus"):
        print("indirect_heavy inline-cache chains (compiled tier):")
        for corpus, ic in sorted(ih_family["ic_per_corpus"].items()):
            print(
                "  %-17s hit rate %5.1f%%  hits/overflow/misses %d/%d/%d  "
                "promotions %d  depth hits %s"
                % (corpus, 100.0 * ic["hit_rate"], ic["hits"],
                   # .get: merged JSON may predate the megamorphic tier.
                   ic.get("overflow_hits", 0), ic["misses"],
                   ic["promotions"], ic["depth_hits"])
            )
    print("results written to %s" % out_path)

    gate = results["gate"]
    if "pass" in gate:
        print(
            "gate: %s speedup %.2fx (threshold %.1fx) -> %s"
            % (GATE_WORKLOAD, gate["speedup_x"], GATE_THRESHOLD_X,
               "PASS" if gate["pass"] else "FAIL")
        )
        if args.check:
            # An explicit --check-threshold overrides the recorded gate
            # for the exit code only (CI smoke uses 1.0: merely "not
            # slower", robust to shared-runner noise).
            threshold = (
                args.check_threshold if args.check_threshold is not None
                else GATE_THRESHOLD_X
            )
            family = results["workloads"][GATE_WORKLOAD]
            trimmed = family.get("speedup_trimmed_x", family["speedup_x"])
            ok = family["identical_results"] and trimmed >= threshold
            if not ok:
                return 1
    if args.check and "sidecar_cold_warm" in results["workloads"]:
        family = results["workloads"]["sidecar_cold_warm"]
        warm_ok = (family["identical_results"]
                   and family["host_compiles_warm"] == 0)
        print(
            "sidecar: host compiles cold=%d warm=%d -> %s"
            % (family["host_compiles_cold"], family["host_compiles_warm"],
               "PASS" if warm_ok else "FAIL")
        )
        if not warm_ok:
            return 1
    if args.check and "shared_store" in results["workloads"]:
        family = results["workloads"]["shared_store"]
        # The cross-application acceptance gate: a database that never
        # ran a workload performs zero host compile()s when another
        # database on the host already published the bodies — and the
        # isolated control actually paid them, so zero is meaningful.
        shared_ok = (
            family["identical_results"]
            and family["host_compiles_shared"] == 0
            and family["host_compiles_isolated"] > 0
            and family["shared_hits_shared"] > 0
        )
        print(
            "shared store: host compiles isolated=%d shared=%d "
            "(shared hits %d) -> %s"
            % (family["host_compiles_isolated"],
               family["host_compiles_shared"],
               family["shared_hits_shared"],
               "PASS" if shared_ok else "FAIL")
        )
        if not shared_ok:
            return 1
    if args.check and "record_overhead" in results["workloads"]:
        family = results["workloads"]["record_overhead"]
        overhead_pct = 100.0 * (family["record_s"] / family["plain_s"] - 1.0)
        record_ok = family["identical_results"] and overhead_pct < 10.0
        print(
            "record overhead: %.1f%% (cap 10%%), identical=%s -> %s"
            % (overhead_pct, family["identical_results"],
               "PASS" if record_ok else "FAIL")
        )
        if not record_ok:
            return 1
    if args.check and "indirect_heavy" in results["workloads"]:
        family = results["workloads"]["indirect_heavy"]
        per = family.get("ic_per_corpus") or {}
        # The chains must actually engage on the corpora built to fit
        # them.  Megamorphic is deliberately excluded: its callr site
        # cycles more targets than the chain holds, so a near-zero hit
        # rate there is the designed behavior, not a regression.
        ic_ok = (
            family["identical_results"]
            and all(per.get(name, {}).get("hit_rate", 0.0) > 0.0
                    for name in ("alternating_pair", "rotating_3"))
        )
        print(
            "indirect ICs: identical=%s alternating_pair=%.1f%% "
            "rotating_3=%.1f%% -> %s"
            % (family["identical_results"],
               100.0 * per.get("alternating_pair", {}).get("hit_rate", 0.0),
               100.0 * per.get("rotating_3", {}).get("hit_rate", 0.0),
               "PASS" if ic_ok else "FAIL")
        )
        if not ic_ok:
            return 1
    if args.check and "trace_linking" in results["workloads"]:
        family = results["workloads"]["trace_linking"]
        # The linked tier must win without changing a single observable:
        # bit-identical to the no-link tier AND to the interpreted
        # oracle, with every stable-chain exit resolved in cache (zero
        # dispatcher bounces) and fusion actually engaged.
        link_ok = (
            family["identical_results"]
            and family["oracle_identical"]
            and family["link_bounces"] == 0
            and family["regions_fused"] > 0
        )
        print(
            "trace linking: identical=%s oracle=%s bounces=%d "
            "regions=%d -> %s"
            % (family["identical_results"], family["oracle_identical"],
               family["link_bounces"], family["regions_fused"],
               "PASS" if link_ok else "FAIL")
        )
        if not link_ok:
            return 1
    if args.check and "tiered_warmup" in results["workloads"]:
        family = results["workloads"]["tiered_warmup"]
        # The tiered warm-up acceptance gate: background compilation
        # must reach first output in at most 60% of the synchronous
        # cold TTFO without changing one observable (bit-identical to
        # sync AND to the interpreted oracle), the prewarm jobs sweep
        # must scale core-awarely, and a prewarmed store must leave the
        # warm run nothing to compile.
        ratio = family.get("ttfo_ratio_x", 1.0)
        warmup_ok = (
            family["identical_results"]
            and family["oracle_identical"]
            and ratio <= 0.6
            and family["prewarm_warm_host_compiles"] == 0
            and family["jobs_monotonic_ok"]
        )
        print(
            "tiered warmup: ttfo ratio %.2f (cap 0.60) warm compiles=%d "
            "jobs monotonic=%s identical=%s oracle=%s -> %s"
            % (ratio, family["prewarm_warm_host_compiles"],
               family["jobs_monotonic_ok"], family["identical_results"],
               family["oracle_identical"],
               "PASS" if warmup_ok else "FAIL")
        )
        if not warmup_ok:
            return 1
    if args.check and "fleet_warmup" in results["workloads"]:
        family = results["workloads"]["fleet_warmup"]
        # The fleet acceptance gate: the warm fleet compiles nothing
        # over the socket, both transports are bit-identical, warm
        # daemon lookups beat the flock store's stat-revalidated path,
        # sessions against a dead daemon silently fall back to the
        # files, and the store is still fsck-clean after the daemon's
        # write-backs.  The fleet wall clock itself is not gated: on a
        # loaded single-core CI runner, N-process spawn noise dwarfs
        # the lookup path either way.
        fleet_ok = (
            family["identical_results"]
            and family["daemon_alive"]
            and family["fleet_host_compiles_daemon"] == 0
            and family["daemon_lookup_p50_us"]
                < family["flock_lookup_p50_us"]
            and family["fallback_ok"]
            and family["fsck_clean"]
        )
        print(
            "fleet warmup: %d procs, host compiles flock=%d daemon=%d, "
            "lookup p50 %.1f/%.1fus p99 %.1f/%.1fus (flock/daemon), "
            "fallback=%s fsck=%s identical=%s -> %s"
            % (family["fleet_processes"],
               family["fleet_host_compiles_flock"],
               family["fleet_host_compiles_daemon"],
               family["flock_lookup_p50_us"],
               family["daemon_lookup_p50_us"],
               family["flock_lookup_p99_us"],
               family["daemon_lookup_p99_us"],
               family["fallback_ok"], family["fsck_clean"],
               family["identical_results"],
               "PASS" if fleet_ok else "FAIL")
        )
        if not fleet_ok:
            return 1
    if args.check and "transparency" in results["workloads"]:
        family = results["workloads"]["transparency"]
        # The transparency acceptance gate: every dispatch tier
        # bit-identical to the interpreted oracle (output, exit status,
        # every VMStats counter), zero stale code-byte reads against
        # the native oracle (cold and across every warm transport),
        # the SMC detector engaged on every churner, and warm restarts
        # that actually revived persisted traces.
        churn_smc = family.get("churn_smc") or {}
        transparency_ok = (
            family["identical_results"]
            and family["oracle_identical"]
            and family["stale_reads"] == 0
            and family["smc_ok"]
            and family["warm_identical"]
            and family["warm_preloaded"] > 0
        )
        print(
            "transparency: identical=%s oracle=%s stale reads=%d "
            "churn invalidations=%d warm=%s (preloaded %d) -> %s"
            % (family["identical_results"], family["oracle_identical"],
               family["stale_reads"], sum(churn_smc.values()),
               family["warm_identical"], family["warm_preloaded"],
               "PASS" if transparency_ok else "FAIL")
        )
        for failure in family.get("oracle_failures") or []:
            print("  oracle divergence: %s" % failure)
        for failure in family.get("warm_failures") or []:
            print("  warm divergence: %s" % failure)
        if not transparency_ok:
            return 1
    if args.check:
        # Noise advisory (never flips the exit code): a family whose
        # per-mode max-over-min spread exceeds the threshold ran on a
        # machine too loaded for its numbers to be trusted.
        for name, family in sorted(results["workloads"].items()):
            for key in sorted(family):
                if key.endswith("_spread_pct") and family[key] > 25.0:
                    print(
                        "warning: %s %s %.0f%% exceeds 25%% — rerun on "
                        "a quieter machine before trusting the speedup"
                        % (name, key, family[key])
                    )
    return 0


def cmd_prewarm(args) -> int:
    """``repro prewarm``: mass-compile a corpus ahead of first use."""
    from repro.persist.prewarm import PrewarmError, run_prewarm

    try:
        report = run_prewarm(
            args.pcache,
            jobs=args.jobs,
            corpus=args.corpus,
            shared_store_dir=args.shared_store,
            verify=args.verify,
        )
    except PrewarmError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        import json
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            "prewarmed %d app(s) with %d job(s) in %.2fs"
            % (report.apps, report.jobs, report.wall_s)
        )
        print(
            "  traces persisted: %d" % report.traces_persisted
        )
        print(
            "  bodies: compiled %d, skipped (already stored) %d"
            % (report.compiled, report.skipped)
        )
        if args.shared_store:
            print(
                "  shared store: admitted %d, below cost floor %d"
                % (report.admitted, report.admission_skipped)
            )
        for job in report.job_reports:
            print(
                "  job %d: %s  %.2fs  compiled %d"
                % (job.job, ",".join(job.apps), job.wall_s,
                   job.host_compiles)
            )
    if args.verify:
        verified = report.verify_host_compiles == 0
        print(
            "verify: warm run host compiles = %d -> %s"
            % (report.verify_host_compiles,
               "PASS" if verified else "FAIL")
        )
        if not verified:
            return 1
    return 0


def cmd_disasm(args) -> int:
    """``repro disasm``: disassemble an SBF image's .text."""
    image = Image.load(args.image)
    text = image.section(".text")
    for line in disassemble(bytes(text.data), base=args.base + text.vaddr):
        print(line)
    return 0


# ---------------------------------------------------------------------------
# Parser.
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Persistent code caching for a DBI engine (CGO 2007 "
                    "reproduction).",
    )
    parser.add_argument("--version", action="version",
                        version="repro %s" % __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("list", help="list workloads and inputs")
    sub.set_defaults(func=cmd_list)

    sub = subparsers.add_parser("run", help="run a workload input")
    sub.add_argument("suite",
                     choices=("spec", "gui", "oracle", "shell", "nondet"))
    sub.add_argument("workload")
    sub.add_argument("input")
    sub.add_argument("--native", action="store_true",
                     help="interpret natively instead of under the VM")
    sub.add_argument("--tool", choices=sorted(_TOOLS), default="none",
                     help="instrumentation tool (default: none)")
    sub.add_argument("--shared-store", metavar="DIR",
                     help="attach the per-host shared compiled-body store "
                          "at DIR (requires --pcache)")
    sub.add_argument("--pcache", metavar="DIR",
                     help="persistent-cache database directory")
    sub.add_argument("--inter-app", action="store_true",
                     help="inter-application cache lookup")
    sub.add_argument("--pic", action="store_true",
                     help="position-independent translations")
    sub.add_argument("--readonly", action="store_true",
                     help="do not write the cache back")
    sub.add_argument("--layout-seed", type=int, default=None,
                     help="perturb library load addresses with this seed")
    sub.add_argument("--record", action="store_true",
                     help="record the session's nondeterminism into a "
                          "PCRL1 replay log (stored under --pcache when "
                          "given; disables the cache tiers)")
    sub.set_defaults(func=cmd_run)

    sub = subparsers.add_parser(
        "replay", help="replay recorded sessions against this build"
    )
    sub.add_argument("directory",
                     help="cache database holding the replay/ logs")
    sub.add_argument("--log", metavar="NAME",
                     help="replay only this stored log")
    sub.add_argument("--diff", action="store_true",
                     help="differential sweep: replay every stored log "
                          "and diff against its recorded baseline")
    sub.add_argument("--mode",
                     choices=("interpreted", "compiled", "both"),
                     default="both",
                     help="dispatch tier(s) to replay under "
                          "(default: both)")
    sub.set_defaults(func=cmd_replay)

    sub = subparsers.add_parser("timeline",
                                help="translation-request timeline (Fig 2a)")
    sub.add_argument("suite",
                     choices=("spec", "gui", "oracle", "shell", "nondet"))
    sub.add_argument("workload")
    sub.add_argument("input")
    sub.add_argument("--width", type=int, default=72)
    sub.set_defaults(func=cmd_timeline)

    pcache = subparsers.add_parser("pcache",
                                   help="inspect persistent cache databases")
    pcache_sub = pcache.add_subparsers(dest="pcache_command", required=True)
    sub = pcache_sub.add_parser("list", help="list database entries")
    sub.add_argument("directory")
    sub.set_defaults(func=cmd_pcache_list)
    sub = pcache_sub.add_parser("show", help="show one cache file")
    sub.add_argument("directory")
    sub.add_argument("--index", type=int, default=0)
    sub.set_defaults(func=cmd_pcache_show)

    cache = subparsers.add_parser(
        "cache", help="maintain persistent cache databases"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    sub = cache_sub.add_parser(
        "fsck", help="check database or shared-store integrity "
                     "(per-section checksums)"
    )
    sub.add_argument("directory")
    sub.add_argument("--quarantine", action="store_true",
                     help="move damaged files aside and drop them from "
                          "the index (never deletes)")
    sub.set_defaults(func=cmd_cache_fsck)
    sub = cache_sub.add_parser(
        "gc", help="mark-and-sweep a shared compiled-body store"
    )
    sub.add_argument("directory")
    sub.add_argument("--db", action="append", metavar="DIR",
                     help="register this database before marking "
                          "(repeatable)")
    sub.add_argument("--max-bytes", type=int, default=None,
                     help="LRU/size cap: evict least-recently-used "
                          "bodies until the pool fits")
    sub.add_argument("--json", action="store_true",
                     help="print the machine-readable report")
    sub.set_defaults(func=cmd_cache_gc)
    sub = cache_sub.add_parser(
        "serve", help="serve a shared store to a session fleet "
                      "(per-host cache-server daemon)"
    )
    sub.add_argument("directory",
                     help="shared-store directory to serve")
    sub.add_argument("--socket", metavar="ADDR", default=None,
                     help="socket address: a unix path or tcp://HOST:PORT "
                          "(default: DIR/daemon.sock)")
    sub.add_argument("--max-bytes", type=int, default=None,
                     help="hot-index byte cap; eviction ranks by "
                          "(cost_us, stamp) ascending")
    sub.add_argument("--flush-interval", type=float, default=2.0,
                     help="seconds between write-backs to the shard "
                          "files (default 2.0)")
    sub.add_argument("--detach", action="store_true",
                     help="run the daemon in the background (logs to "
                          "DIR/daemon.log) and wait until it answers")
    sub.add_argument("--status", action="store_true",
                     help="ping a running daemon and print its stats")
    sub.add_argument("--stop", action="store_true",
                     help="ask a running daemon to flush and exit")
    sub.add_argument("--json", action="store_true",
                     help="print --status output as JSON")
    sub.set_defaults(func=cmd_cache_serve)

    sub = subparsers.add_parser(
        "bench", help="wall-clock dispatch-tier benchmark suite"
    )
    sub.add_argument("--warmup", type=int, default=2,
                     help="untimed repetitions per family/mode (default 2)")
    sub.add_argument("--reps", type=int, default=5,
                     help="timed repetitions per family/mode (default 5)")
    sub.add_argument("--family", action="append",
                     choices=("fig5a_gui", "fig2b_gui", "headline_spec",
                              "sidecar_cold_warm", "shared_store",
                              "indirect_heavy", "record_overhead",
                              "trace_linking", "tiered_warmup",
                              "fleet_warmup", "transparency"),
                     help="run only this family (repeatable; default all)")
    sub.add_argument("--out", metavar="PATH",
                     help="result JSON path (default BENCH_wallclock.json "
                          "at the repo root)")
    sub.add_argument("--check", action="store_true",
                     help="exit non-zero when the fig5a speedup gate fails")
    sub.add_argument("--check-threshold", type=float, default=None,
                     help="override the --check speedup threshold "
                          "(default: the recorded 1.5x gate)")
    sub.set_defaults(func=cmd_bench)

    sub = subparsers.add_parser(
        "prewarm",
        help="mass-compile a workload corpus into caches ahead of use",
    )
    sub.add_argument("--pcache", required=True, metavar="DIR",
                     help="cache database directory to warm")
    sub.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default 1)")
    sub.add_argument("--corpus", choices=("tiny", "warmup", "gui"),
                     default="warmup",
                     help="workload corpus to compile (default warmup)")
    sub.add_argument("--shared-store", metavar="DIR",
                     help="also publish compiled bodies to this per-host "
                          "shared store")
    sub.add_argument("--verify", action="store_true",
                     help="re-run the corpus warm afterwards; exit "
                          "non-zero unless the host compiles nothing")
    sub.add_argument("--json", action="store_true",
                     help="print the machine-readable report")
    sub.set_defaults(func=cmd_prewarm)

    sub = subparsers.add_parser("disasm", help="disassemble an SBF image")
    sub.add_argument("image")
    sub.add_argument("--base", type=lambda v: int(v, 0), default=0)
    sub.set_defaults(func=cmd_disasm)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
