"""Program-construction DSL for synthetic workloads.

Every evaluated application (SPEC2K analogs, GUI apps, the Oracle-like
database) is generated from the same building blocks:

* **leaf functions** — straight-line ALU bodies ending in ``ret``;
* **non-leaf functions** — bodies with calls interspersed, with a proper
  link-register spill prologue/epilogue;
* **loop functions** — run their body ``a0`` times (hot kernels, init
  loops);
* a **main** that (1) runs the base initialization calls unconditionally,
  (2) dispatches *feature blocks* according to a bitmask argument, and
  (3) drives the hot kernel for an argument-controlled iteration count.

The feature-mask dispatch is how experiments control *code coverage
between inputs*: each input is a (mask, hot-iterations) pair, and the
static code an input touches is base + its mask's blocks.  Masks cover up
to :data:`MAX_FEATURES` blocks (bits 0-30 in ``a0``, 31-61 in ``a1``).

All code generation is deterministic in the provided seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.binfmt.image import Image, ImageBuilder, ImageKind
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.isa.instructions import Instruction
from repro.machine.syscalls import SYS_EXIT

#: Feature-block capacity of the two mask registers (31 + 31 bits).
MAX_FEATURES = 62

_ALU_SCRATCH = list(range(regs.T0 + 1, regs.T0 + 8))  # t1..t7


class WorkloadBuildError(Exception):
    """Raised when a workload specification is inconsistent."""


@dataclass
class FunctionCode:
    """Instructions plus the symbolic call sites inside them."""

    code: List[Instruction] = field(default_factory=list)
    symbol_refs: List[Tuple[int, str]] = field(default_factory=list)

    def emit(self, inst: Instruction) -> None:
        self.code.append(inst)

    def emit_call(self, symbol: str) -> None:
        self.symbol_refs.append((len(self.code), symbol))
        self.code.append(ins.call(0))


def _emit_alu(fn: FunctionCode, rng: random.Random, count: int) -> None:
    """Append ``count`` deterministic, fault-free body instructions.

    The mix is ~70% ALU and ~30% loads/stores against scratch slots just
    below the stack pointer, approximating real integer code's memory-op
    density (which memory-reference instrumentation depends on).
    """
    for _ in range(count):
        choice = rng.randrange(10)
        rd = rng.choice(_ALU_SCRATCH)
        rs1 = rng.choice(_ALU_SCRATCH)
        rs2 = rng.choice(_ALU_SCRATCH)
        if choice == 0:
            fn.emit(ins.add(rd, rs1, rs2))
        elif choice == 1:
            fn.emit(ins.xor(rd, rs1, rs2))
        elif choice == 2:
            fn.emit(ins.addi(rd, rs1, rng.randrange(-64, 64)))
        elif choice == 3:
            fn.emit(ins.sub(rd, rs1, rs2))
        elif choice == 4:
            fn.emit(ins.slt(rd, rs1, rs2))
        elif choice == 5:
            fn.emit(ins.shli(rd, rs1, rng.randrange(1, 8)))
        elif choice == 6:
            fn.emit(ins.ori(rd, rs1, rng.randrange(0, 255)))
        elif choice in (7, 8):
            fn.emit(ins.st(regs.SP, rs1, -8 * rng.randrange(1, 5)))
        else:
            fn.emit(ins.ld(rd, regs.SP, -8 * rng.randrange(1, 5)))


def leaf_function(rng: random.Random, size: int) -> FunctionCode:
    """A straight-line function of ``size`` instructions (incl. ``ret``)."""
    if size < 2:
        raise WorkloadBuildError("leaf function needs size >= 2")
    fn = FunctionCode()
    _emit_alu(fn, rng, size - 1)
    fn.emit(ins.ret())
    return fn


def nonleaf_function(
    rng: random.Random, size: int, callees: Sequence[str]
) -> FunctionCode:
    """A function of ~``size`` instructions calling each callee once.

    The prologue spills the link register so nested calls are safe.
    """
    overhead = 5 + len(callees)
    if size < overhead + 1:
        size = overhead + 1
    fn = FunctionCode()
    fn.emit(ins.addi(regs.SP, regs.SP, -16))
    fn.emit(ins.st(regs.SP, regs.LR, 0))
    body = size - overhead
    chunks = len(callees) + 1
    per_chunk, remainder = divmod(body, chunks)
    for position, callee in enumerate(callees):
        _emit_alu(fn, rng, per_chunk + (1 if position < remainder else 0))
        fn.emit_call(callee)
    _emit_alu(fn, rng, per_chunk)
    fn.emit(ins.ld(regs.LR, regs.SP, 0))
    fn.emit(ins.addi(regs.SP, regs.SP, 16))
    fn.emit(ins.ret())
    return fn


def loop_function(
    rng: random.Random,
    body_size: int,
    callees: Sequence[str],
    memory_ops: int = 0,
    syscalls_per_iteration: int = 0,
) -> FunctionCode:
    """A function running its body ``a0`` times.

    The body contains ``body_size`` ALU instructions, one call per callee,
    optionally a few load/store pairs against the stack (to exercise
    memory instrumentation), and optionally ``rand`` syscalls (to model
    syscall-heavy applications like the database, whose translated-code
    overhead is dominated by syscall emulation).  Saves ``lr`` and ``s0``
    (the loop counter).
    """
    fn = FunctionCode()
    fn.emit(ins.addi(regs.SP, regs.SP, -32))
    fn.emit(ins.st(regs.SP, regs.LR, 0))
    fn.emit(ins.st(regs.SP, regs.S0, 8))
    fn.emit(ins.movi(regs.S0, 0))
    loop_head = len(fn.code)
    for callee in callees:
        fn.emit_call(callee)
    for _ in range(memory_ops):
        fn.emit(ins.st(regs.SP, regs.S0, 16))
        fn.emit(ins.ld(regs.T0, regs.SP, 16))
    for _ in range(syscalls_per_iteration):
        fn.emit(ins.movi(regs.RV, 6))  # SYS_RAND: side-effect free
        fn.emit(ins.syscall())
    _emit_alu(fn, rng, max(1, body_size))
    fn.emit(ins.addi(regs.S0, regs.S0, 1))
    # blt s0, a0, loop_head
    here = len(fn.code)
    offset = (loop_head - (here + 1)) * 8
    fn.emit(ins.blt(regs.S0, regs.A0, offset))
    fn.emit(ins.ld(regs.S0, regs.SP, 8))
    fn.emit(ins.ld(regs.LR, regs.SP, 0))
    fn.emit(ins.addi(regs.SP, regs.SP, 32))
    fn.emit(ins.ret())
    return fn


@dataclass
class InputSpec:
    """One input (or phase) of a workload.

    Attributes:
        name: Input label ("ref-1", "train", "Open", ...).
        features: Indices of the feature blocks this input exercises.
        hot_iterations: Trip count handed to the hot driver.
        exit_status: Expected program exit status (for output checking).
    """

    name: str
    features: frozenset = frozenset()
    hot_iterations: int = 100
    exit_status: int = 0

    def to_args(self) -> Tuple[int, int, int]:
        """Encode as the ``(a0, a1, a2)`` argument triple main expects."""
        mask_lo = 0
        mask_hi = 0
        for feature in sorted(self.features):
            if not 0 <= feature < MAX_FEATURES:
                raise WorkloadBuildError("feature index %d out of range" % feature)
            if feature < 31:
                mask_lo |= 1 << feature
            else:
                mask_hi |= 1 << (feature - 31)
        return (mask_lo, mask_hi, self.hot_iterations)


@dataclass
class FeatureBlock:
    """One selectable feature: a function subtree of a given footprint.

    Attributes:
        index: Bit position in the input mask.
        size: Approximate instruction footprint of the block (split over
            a driver function and its sub-functions).
        subfunctions: How many sub-functions to split the block over.
        library_calls: Symbols in shared libraries the block calls (used
            by GUI workloads to make startup execute library code).
        repeat: How many times the block body runs when selected (drives
            the executed-vs-translated ratio of cold code).
    """

    index: int
    size: int = 60
    subfunctions: int = 3
    library_calls: Tuple[str, ...] = ()
    repeat: int = 1


class AppBuilder:
    """Assembles a complete synthetic application image."""

    def __init__(
        self,
        path: str,
        seed: int,
        needed: Sequence[str] = (),
        mtime: int = 1,
        interleave_hot_shift: Optional[int] = None,
    ):
        """Args:
            path: Image path/identity.
            seed: Code-generation seed (deterministic output per seed).
            needed: Shared-library dependency list, load order.
            mtime: Modification timestamp baked into the image.
            interleave_hot_shift: When set, main runs a hot-kernel burst of
                ``hot_iterations >> shift`` trips after *every* feature
                block, interleaving cold-code discovery with steady-state
                execution — the gcc-like profile where translation requests
                continue throughout the run (Figure 2(a)).  None keeps the
                default cold-startup-then-hot-loop profile.
        """
        self.path = path
        self.rng = random.Random(seed)
        self._image = ImageBuilder(
            path, ImageKind.EXECUTABLE, needed=needed, mtime=mtime
        )
        self._init_calls: List[str] = []
        self._features: Dict[int, str] = {}
        self._hot_driver: Optional[str] = None
        self._interleave_hot_shift = interleave_hot_shift
        self._functions_added = 0

    # -- low-level ----------------------------------------------------------

    def add_function(self, name: str, fn: FunctionCode) -> None:
        self._image.add_function(name, fn.code, symbol_refs=fn.symbol_refs)
        self._functions_added += 1

    # -- base (always-executed) code ------------------------------------------

    def add_custom_init(self, name: str, fn: FunctionCode) -> None:
        """Register a hand-built function as unconditional startup code."""
        self.add_function(name, fn)
        self._init_calls.append(name)

    def add_init_block(
        self,
        name: str,
        size: int = 80,
        subfunctions: int = 2,
        library_calls: Sequence[str] = (),
        repeat: int = 1,
    ) -> None:
        """Unconditional startup code: executed by every input."""
        driver = self._add_block_tree(
            name, size, subfunctions, tuple(library_calls), repeat
        )
        self._init_calls.append(driver)

    # -- feature blocks -----------------------------------------------------------

    def add_feature(self, block: FeatureBlock) -> None:
        """Mask-selectable code: executed when the input sets its bit."""
        if block.index in self._features:
            raise WorkloadBuildError("feature %d already defined" % block.index)
        if not 0 <= block.index < MAX_FEATURES:
            raise WorkloadBuildError("feature index %d out of range" % block.index)
        driver = self._add_block_tree(
            "feature_%d" % block.index,
            block.size,
            block.subfunctions,
            block.library_calls,
            block.repeat,
        )
        self._features[block.index] = driver

    def _add_block_tree(
        self,
        name: str,
        size: int,
        subfunctions: int,
        library_calls: Tuple[str, ...],
        repeat: int,
    ) -> str:
        """Build a driver + sub-function tree of roughly ``size`` insts.

        Returns the name of the entry function.  When ``repeat`` > 1 the
        driver is wrapped in a loop run ``repeat`` times (the loop trip
        count is baked in, keeping main's argument protocol simple).
        """
        subfunctions = max(0, subfunctions)
        sub_names = []
        per_sub = size // (subfunctions + 1) if subfunctions else 0
        for sub_index in range(subfunctions):
            sub_name = "%s_sub%d" % (name, sub_index)
            self.add_function(
                sub_name, leaf_function(self.rng, max(2, per_sub))
            )
            sub_names.append(sub_name)
        driver_size = max(6 + len(sub_names) + len(library_calls), size - per_sub * subfunctions)
        body = nonleaf_function(
            self.rng, driver_size, list(sub_names) + list(library_calls)
        )
        body_name = "%s_body" % name
        self.add_function(body_name, body)
        if repeat <= 1:
            return body_name
        wrapper = FunctionCode()
        wrapper.emit(ins.addi(regs.SP, regs.SP, -32))
        wrapper.emit(ins.st(regs.SP, regs.LR, 0))
        wrapper.emit(ins.st(regs.SP, regs.S1, 8))
        wrapper.emit(ins.movi(regs.S1, 0))
        loop_head = len(wrapper.code)
        wrapper.emit_call(body_name)
        wrapper.emit(ins.addi(regs.S1, regs.S1, 1))
        limit_reg = regs.T0
        wrapper.emit(ins.movi(limit_reg, repeat))
        here = len(wrapper.code)
        wrapper.emit(ins.blt(regs.S1, limit_reg, (loop_head - (here + 1)) * 8))
        wrapper.emit(ins.ld(regs.S1, regs.SP, 8))
        wrapper.emit(ins.ld(regs.LR, regs.SP, 0))
        wrapper.emit(ins.addi(regs.SP, regs.SP, 32))
        wrapper.emit(ins.ret())
        wrapper_name = "%s_driver" % name
        self.add_function(wrapper_name, wrapper)
        return wrapper_name

    # -- hot kernel ----------------------------------------------------------------

    def set_hot_kernel(
        self,
        size: int = 40,
        helpers: int = 2,
        helper_size: int = 12,
        memory_ops: int = 1,
        syscalls_per_iteration: int = 0,
    ) -> None:
        """The steady-state loop main drives with the iteration argument."""
        helper_names = []
        for helper_index in range(helpers):
            name = "hot_helper_%d" % helper_index
            self.add_function(name, leaf_function(self.rng, helper_size))
            helper_names.append(name)
        self.add_function(
            "hot_kernel",
            loop_function(
                self.rng,
                size,
                helper_names,
                memory_ops=memory_ops,
                syscalls_per_iteration=syscalls_per_iteration,
            ),
        )
        self._hot_driver = "hot_kernel"

    # -- main + build ------------------------------------------------------------------

    def build(self) -> Image:
        """Emit main and finish the image."""
        main = FunctionCode()
        # Preserve the three arguments across calls: masks in s0/s1, the
        # hot iteration count on the stack.
        main.emit(ins.addi(regs.SP, regs.SP, -16))
        main.emit(ins.st(regs.SP, regs.A2, 0))
        main.emit(ins.or_(regs.S0, regs.A0, regs.ZERO))
        main.emit(ins.or_(regs.S1, regs.A1, regs.ZERO))
        for init_name in self._init_calls:
            main.emit_call(init_name)
        for index in sorted(self._features):
            mask_reg = regs.S0 if index < 31 else regs.S1
            bit = 1 << (index if index < 31 else index - 31)
            main.emit(ins.andi(regs.T0, mask_reg, bit))
            # beq t0, zero, +8  (skip the call)
            main.emit(ins.beq(regs.T0, regs.ZERO, 8))
            main.emit_call(self._features[index])
            if self._interleave_hot_shift is not None and self._hot_driver:
                # Interleaved hot burst: cold discovery continues through
                # the whole run (the 176.gcc profile).
                main.emit(ins.ld(regs.A0, regs.SP, 0))
                main.emit(ins.shri(regs.A0, regs.A0, self._interleave_hot_shift))
                main.emit_call(self._hot_driver)
        if self._hot_driver is not None:
            main.emit(ins.ld(regs.A0, regs.SP, 0))
            main.emit_call(self._hot_driver)
        main.emit(ins.movi(regs.RV, SYS_EXIT))
        main.emit(ins.movi(regs.A0, 0))
        main.emit(ins.syscall())
        self.add_function("main", main)
        self._image.set_entry("main")
        return self._image.build()
