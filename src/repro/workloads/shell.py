"""Shell-utility analogs: the shortest-lived programs of the paper's intro.

"Applications exhibiting cold code behavior are prevalent in everyday
computing environments ranging from shell programs to Graphical User
Interface (GUI) and enterprise-scale applications." (§1)

A shell utility is the extreme case: a few milliseconds of real work,
every instruction cold, invoked thousands of times a day.  Under a DBI
engine its run is almost pure translation cost — and because utilities
share libc, inter-application persistence means the *first* `ls` warms up
`cat`, `cp` and the rest.

The suite models six coreutils-style tools over a shared ``libc.so``
analog: tiny app-specific logic, a libc-heavy startup, and a short
argument-dependent work loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.loader.linker import ImageStore
from repro.workloads.builder import AppBuilder, InputSpec
from repro.workloads.corpus import LibrarySpec, build_corpus
from repro.workloads.harness import Workload

#: The C library every utility links against.
SHELL_LIBC = LibrarySpec("libc.so", n_funcs=40, func_size=20, seed=101)


@dataclass(frozen=True)
class ShellToolParams:
    """Generation parameters for one utility."""

    name: str
    seed: int
    #: Fraction of libc the tool touches at startup.
    libc_coverage: float
    #: Offset into libc's function list (tools overlap but differ).
    libc_phase: int
    #: App-specific logic size, instructions.
    local_code: int
    #: Work-loop iterations ("bytes processed"): tiny by design.
    work: int


SHELL_TOOLS: Dict[str, ShellToolParams] = {
    params.name: params
    for params in [
        ShellToolParams("ls", seed=71, libc_coverage=0.55, libc_phase=0,
                        local_code=60, work=40),
        ShellToolParams("cat", seed=72, libc_coverage=0.45, libc_phase=4,
                        local_code=40, work=60),
        ShellToolParams("cp", seed=73, libc_coverage=0.50, libc_phase=8,
                        local_code=50, work=50),
        ShellToolParams("grep", seed=74, libc_coverage=0.60, libc_phase=12,
                        local_code=90, work=80),
        ShellToolParams("wc", seed=75, libc_coverage=0.40, libc_phase=16,
                        local_code=40, work=70),
        ShellToolParams("touch", seed=76, libc_coverage=0.35, libc_phase=20,
                        local_code=30, work=10),
    ]
}

_CALLS_PER_BLOCK = 8


def build_shell_tool(params: ShellToolParams) -> Workload:
    """Generate one utility against the shared libc."""
    app = AppBuilder(
        "bin/%s" % params.name, seed=params.seed, needed=[SHELL_LIBC.path]
    )
    names = SHELL_LIBC.function_names()
    count = max(1, int(len(names) * params.libc_coverage))
    start = params.libc_phase % len(names)
    selected = [SHELL_LIBC.init_symbol] + [
        names[(start + i) % len(names)] for i in range(count)
    ]
    for block_index, chunk_start in enumerate(
        range(0, len(selected), _CALLS_PER_BLOCK)
    ):
        chunk = selected[chunk_start : chunk_start + _CALLS_PER_BLOCK]
        app.add_init_block(
            "libc_init_%d" % block_index,
            size=6 + len(chunk),
            subfunctions=0,
            library_calls=chunk,
        )
    app.add_init_block("tool_logic", size=params.local_code, subfunctions=2)
    app.set_hot_kernel(size=12, helpers=1, helper_size=6)
    image = app.build()
    inputs = {
        "run": InputSpec("run", features=frozenset(),
                         hot_iterations=params.work),
    }
    return Workload(name=params.name, image=image, inputs=inputs)


def build_shell_suite() -> Tuple[Dict[str, Workload], ImageStore]:
    """All six utilities over one shared libc store."""
    store = build_corpus([SHELL_LIBC])
    tools = {}
    for name, params in SHELL_TOOLS.items():
        workload = build_shell_tool(params)
        workload.store = store
        tools[name] = workload
    return tools, store
