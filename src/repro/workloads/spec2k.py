"""SPEC2K INT analog suite.

Eleven synthetic benchmarks stand in for the SPEC2K INT programs the paper
evaluates (252.eon is omitted there too, §4.1).  What matters for every
experiment is reproduced structurally, not numerically:

* **footprint** — 176.gcc has by far the largest static code footprint;
  164.gzip/256.bzip2 the smallest (Figure 9's cache-size ordering);
* **hot/cold mix** — most benchmarks capture their footprint early and
  then loop (Figure 2(a)); gcc keeps a large cold fraction, so its VM
  overhead dominates even on long runs;
* **inputs** — benchmarks with multiple Reference inputs get engineered
  feature sets whose pairwise code coverage matches the paper's bands:
  gzip/bzip2 ~100%, gcc 84-98% (Table 3(a)), perlbmk and vpr lower
  (Figure 4);
* **Train vs Reference** — Train inputs run ~6x fewer hot iterations
  (§4.2: "execution is 6x longer when the Reference inputs are used").

Workload sizes are scaled down ~3 orders of magnitude from the real suite
so the pure-Python machine can execute them; every reported quantity is a
ratio, which survives the scaling (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.workloads.builder import AppBuilder, FeatureBlock, InputSpec
from repro.workloads.harness import Workload

#: Train inputs run this many times fewer hot iterations than Reference.
TRAIN_DIVISOR = 6


@dataclass(frozen=True)
class SpecParams:
    """Generation parameters for one benchmark analog."""

    name: str
    seed: int
    base_blocks: int
    base_size: int
    n_features: int
    feature_size: int
    feature_subfunctions: int
    #: Feature indices shared by every input.
    core_features: int
    #: Features each input draws from the non-core pool (0 = all inputs
    #: use every feature, i.e. ~100% cross-input coverage).
    extras_per_input: int
    n_inputs: int
    ref_iterations: int
    hot_size: int = 40
    hot_helpers: int = 2
    #: See AppBuilder: interleave hot bursts between feature blocks so
    #: translation requests continue through the whole run (gcc only).
    interleave_hot_shift: int = -1


def _input_feature_sets(params: SpecParams) -> List[FrozenSet[int]]:
    """Engineer per-input feature sets with the target coverage band.

    Inputs share the core features and rotate through the extras pool, so
    consecutive inputs overlap more than distant ones — giving a *spread*
    of pairwise coverages like Table 3(a), not a single value.
    """
    core = frozenset(range(params.core_features))
    pool = list(range(params.core_features, params.n_features))
    sets = []
    for input_index in range(params.n_inputs):
        if not pool or params.extras_per_input == 0:
            sets.append(frozenset(range(params.n_features)))
            continue
        stride = len(pool) // 2 + 1  # distinct window start per input
        chosen = {
            pool[(input_index * stride + step) % len(pool)]
            for step in range(params.extras_per_input)
        }
        sets.append(core | chosen)
    return sets


def build_benchmark(params: SpecParams) -> Workload:
    """Generate one benchmark and its Reference + Train inputs."""
    app = AppBuilder(
        "spec/%s" % params.name,
        seed=params.seed,
        interleave_hot_shift=(
            params.interleave_hot_shift if params.interleave_hot_shift >= 0 else None
        ),
    )
    for block_index in range(params.base_blocks):
        app.add_init_block(
            "init_%d" % block_index,
            size=params.base_size,
            subfunctions=2,
        )
    for feature_index in range(params.n_features):
        app.add_feature(
            FeatureBlock(
                index=feature_index,
                size=params.feature_size,
                subfunctions=params.feature_subfunctions,
            )
        )
    app.set_hot_kernel(size=params.hot_size, helpers=params.hot_helpers)
    image = app.build()

    inputs: Dict[str, InputSpec] = {}
    feature_sets = _input_feature_sets(params)
    for input_index, features in enumerate(feature_sets, start=1):
        inputs["ref-%d" % input_index] = InputSpec(
            name="ref-%d" % input_index,
            features=features,
            hot_iterations=params.ref_iterations,
        )
    inputs["train"] = InputSpec(
        name="train",
        features=feature_sets[0],
        hot_iterations=max(1, params.ref_iterations // TRAIN_DIVISOR),
    )
    return Workload(name=params.name, image=image, inputs=inputs)


#: Generation parameters for the whole suite.  Footprints and iteration
#: counts are calibrated against the paper's VM-overhead observations:
#: gcc ~50-60% of run time in the VM on Reference inputs, perlbmk next,
#: the rest mostly single-digit percentages.
SPEC2K_INT: Dict[str, SpecParams] = {
    params.name: params
    for params in [
        SpecParams("164.gzip", seed=11, base_blocks=2, base_size=40,
                   n_features=4, feature_size=30, feature_subfunctions=1,
                   core_features=4, extras_per_input=0, n_inputs=5,
                   ref_iterations=11000),
        SpecParams("175.vpr", seed=12, base_blocks=2, base_size=50,
                   n_features=10, feature_size=40, feature_subfunctions=1,
                   core_features=5, extras_per_input=3, n_inputs=2,
                   ref_iterations=9000),
        SpecParams("176.gcc", seed=13, base_blocks=6, base_size=80,
                   n_features=24, feature_size=110, feature_subfunctions=3,
                   core_features=12, extras_per_input=7, n_inputs=5,
                   ref_iterations=600, interleave_hot_shift=0),
        SpecParams("181.mcf", seed=14, base_blocks=2, base_size=40,
                   n_features=3, feature_size=36, feature_subfunctions=1,
                   core_features=3, extras_per_input=0, n_inputs=1,
                   ref_iterations=9000),
        SpecParams("186.crafty", seed=15, base_blocks=3, base_size=50,
                   n_features=6, feature_size=44, feature_subfunctions=2,
                   core_features=6, extras_per_input=0, n_inputs=1,
                   ref_iterations=9500),
        SpecParams("197.parser", seed=16, base_blocks=2, base_size=50,
                   n_features=5, feature_size=40, feature_subfunctions=1,
                   core_features=4, extras_per_input=1, n_inputs=2,
                   ref_iterations=8000),
        SpecParams("253.perlbmk", seed=17, base_blocks=3, base_size=50,
                   n_features=14, feature_size=40, feature_subfunctions=2,
                   core_features=4, extras_per_input=5, n_inputs=4,
                   ref_iterations=9000),
        SpecParams("254.gap", seed=18, base_blocks=2, base_size=50,
                   n_features=5, feature_size=40, feature_subfunctions=1,
                   core_features=4, extras_per_input=1, n_inputs=2,
                   ref_iterations=8000),
        SpecParams("255.vortex", seed=19, base_blocks=3, base_size=60,
                   n_features=6, feature_size=44, feature_subfunctions=2,
                   core_features=6, extras_per_input=0, n_inputs=2,
                   ref_iterations=9000),
        SpecParams("256.bzip2", seed=20, base_blocks=2, base_size=40,
                   n_features=4, feature_size=30, feature_subfunctions=1,
                   core_features=4, extras_per_input=0, n_inputs=3,
                   ref_iterations=11000),
        SpecParams("300.twolf", seed=21, base_blocks=3, base_size=50,
                   n_features=6, feature_size=44, feature_subfunctions=2,
                   core_features=6, extras_per_input=0, n_inputs=1,
                   ref_iterations=9500),
    ]
}

#: Benchmarks with multiple Reference inputs (Figure 4 / Table 3(a)).
MULTI_INPUT_BENCHMARKS = (
    "164.gzip", "175.vpr", "176.gcc", "253.perlbmk", "256.bzip2",
)


def build_suite(names: Tuple[str, ...] = ()) -> Dict[str, Workload]:
    """Build the (sub)suite; empty ``names`` means everything."""
    selected = names or tuple(SPEC2K_INT)
    return {name: build_benchmark(SPEC2K_INT[name]) for name in selected}
