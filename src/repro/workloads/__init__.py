"""Synthetic workload suites: SPEC2K INT analogs, GUI apps, Oracle DB."""

from repro.workloads.builder import (
    AppBuilder,
    FeatureBlock,
    FunctionCode,
    InputSpec,
    MAX_FEATURES,
    WorkloadBuildError,
    leaf_function,
    loop_function,
    nonleaf_function,
)
from repro.workloads.corpus import (
    LibrarySpec,
    build_corpus,
    build_library,
    default_gui_corpus,
)
from repro.workloads.gui import (
    GUI_APPS,
    GuiAppParams,
    build_gui_app,
    build_gui_suite,
    common_library_matrix,
)
from repro.workloads.harness import Workload, run_native, run_vm
from repro.workloads.regression import (
    RegressionDriver,
    RegressionReport,
    TestOutcome,
    interleaved_cases,
    round_robin_cases,
)
from repro.workloads.oracle import (
    ORACLE_BLOCKS,
    PHASES,
    PHASE_ITERATIONS,
    build_oracle,
    expected_coverage_matrix,
    phase_features,
    unit_test_sequence,
)
from repro.workloads.shell import (
    SHELL_TOOLS,
    ShellToolParams,
    build_shell_suite,
    build_shell_tool,
)
from repro.workloads.spec2k import (
    MULTI_INPUT_BENCHMARKS,
    SPEC2K_INT,
    SpecParams,
    TRAIN_DIVISOR,
    build_benchmark,
    build_suite,
)

__all__ = [
    "AppBuilder",
    "FeatureBlock",
    "FunctionCode",
    "GUI_APPS",
    "GuiAppParams",
    "InputSpec",
    "LibrarySpec",
    "MAX_FEATURES",
    "MULTI_INPUT_BENCHMARKS",
    "ORACLE_BLOCKS",
    "PHASES",
    "PHASE_ITERATIONS",
    "RegressionDriver",
    "RegressionReport",
    "TestOutcome",
    "SHELL_TOOLS",
    "SPEC2K_INT",
    "ShellToolParams",
    "SpecParams",
    "TRAIN_DIVISOR",
    "Workload",
    "WorkloadBuildError",
    "build_benchmark",
    "build_corpus",
    "build_gui_app",
    "build_gui_suite",
    "build_library",
    "build_oracle",
    "build_shell_suite",
    "build_shell_tool",
    "build_suite",
    "common_library_matrix",
    "default_gui_corpus",
    "expected_coverage_matrix",
    "interleaved_cases",
    "leaf_function",
    "loop_function",
    "nonleaf_function",
    "phase_features",
    "round_robin_cases",
    "run_native",
    "run_vm",
    "unit_test_sequence",
]
