"""Nondeterminism-sensitive workloads for the record/replay tier.

The standard synthetic suites use ``SYS_RAND`` only as a cheap
side-effect-free syscall — the value is dropped, so a replay that
substituted the *wrong* random value would still look bit-identical.
These workloads close that hole: every nondeterministic result the OS
hands back (rand, pid, clock, tid, spawn order) flows into the program's
**output bytes** and/or **exit status**, so one flipped logged value is
visible in the replayed result.  The differential-replay canary test
depends on this property.

Three programs:

* ``dice`` — a rand loop whose values are written out verbatim and
  XOR-folded into the exit status, followed by getpid and clock probes.
* ``clockwork`` — interleaved clock reads written out (the classic
  timing-nondeterminism surface), closed by a gettid probe.
* ``relay`` — spawns two worker threads; workers and main interleave
  through yields, each writing its tid and rand draws, so the output
  byte order encodes the complete scheduling sequence.

All three read their iteration count from ``a2`` (the standard
``InputSpec.hot_iterations`` slot) and run the loop body at least once.
"""

from __future__ import annotations

from typing import Dict

from repro.binfmt.image import ImageBuilder, ImageKind
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.machine.syscalls import (
    SYS_CLOCK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_GETTID,
    SYS_RAND,
    SYS_THREAD_CREATE,
    SYS_WRITE,
    SYS_YIELD,
)
from repro.workloads.builder import FunctionCode, InputSpec
from repro.workloads.harness import Workload


def _syscall(fn: FunctionCode, number: int) -> None:
    fn.emit(ins.movi(regs.RV, number))
    fn.emit(ins.syscall())


def _write_rv(fn: FunctionCode) -> None:
    """Append ``rv``'s 8 bytes to the program output (via the stack)."""
    fn.emit(ins.st(regs.SP, regs.RV, 0))
    fn.emit(ins.movi(regs.A0, 8))
    fn.emit(ins.or_(regs.A1, regs.SP, regs.ZERO))
    _syscall(fn, SYS_WRITE)


def _loop(fn: FunctionCode, body) -> None:
    """Run ``body()`` ``s1`` times (at least once), counting in ``t0``."""
    fn.emit(ins.movi(regs.T0, 0))
    loop_head = len(fn.code)
    body()
    fn.emit(ins.addi(regs.T0, regs.T0, 1))
    here = len(fn.code)
    fn.emit(ins.blt(regs.T0, regs.S1, (loop_head - (here + 1)) * 8))


def _build_dice():
    image = ImageBuilder("nondet/dice", ImageKind.EXECUTABLE)
    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.or_(regs.S0, regs.ZERO, regs.ZERO))

    def body():
        _syscall(main, SYS_RAND)
        main.emit(ins.xor(regs.S0, regs.S0, regs.RV))
        _write_rv(main)

    _loop(main, body)
    _syscall(main, SYS_GETPID)
    _write_rv(main)
    _syscall(main, SYS_CLOCK)
    _write_rv(main)
    # Exit status folds every random draw: value drift also flips it.
    main.emit(ins.andi(regs.A0, regs.S0, 63))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


def _build_clockwork():
    image = ImageBuilder("nondet/clockwork", ImageKind.EXECUTABLE)
    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))

    def body():
        _syscall(main, SYS_CLOCK)
        _write_rv(main)
        _syscall(main, SYS_RAND)
        _write_rv(main)

    _loop(main, body)
    _syscall(main, SYS_GETTID)
    _write_rv(main)
    main.emit(ins.movi(regs.A0, 0))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


def _build_relay():
    image = ImageBuilder("nondet/relay", ImageKind.EXECUTABLE)

    # Worker: announce the tid, let others run, draw and emit a random.
    # Returning falls into the thread-exit shim (an "exit" scheduling
    # decision the log must also capture).
    worker = FunctionCode()
    _syscall(worker, SYS_GETTID)
    _write_rv(worker)
    _syscall(worker, SYS_YIELD)
    _syscall(worker, SYS_RAND)
    _write_rv(worker)
    worker.emit(ins.ret())
    image.add_function("worker", worker.code, symbol_refs=worker.symbol_refs)

    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    for argument in (1, 2):
        # a0 = &worker (symbol relocation carried by the movi).
        main.symbol_refs.append((len(main.code), "worker"))
        main.emit(ins.movi(regs.A0, 0))
        main.emit(ins.movi(regs.A1, argument))
        _syscall(main, SYS_THREAD_CREATE)
        _write_rv(main)  # the spawned tid

    def body():
        _syscall(main, SYS_YIELD)
        _syscall(main, SYS_RAND)
        _write_rv(main)

    _loop(main, body)
    _syscall(main, SYS_GETPID)
    _write_rv(main)
    main.emit(ins.movi(regs.A0, 0))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


def build_nondet_suite() -> Dict[str, Workload]:
    """The three nondeterminism-sensitive workloads, standard inputs."""
    inputs = {
        "short": InputSpec(name="short", hot_iterations=4),
        "long": InputSpec(name="long", hot_iterations=40),
    }
    return {
        "dice": Workload(name="dice", image=_build_dice(), inputs=dict(inputs)),
        "clockwork": Workload(
            name="clockwork", image=_build_clockwork(), inputs=dict(inputs)
        ),
        "relay": Workload(
            name="relay", image=_build_relay(), inputs=dict(inputs)
        ),
    }
