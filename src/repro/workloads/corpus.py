"""Shared-library corpus.

GUI applications in the paper execute 80-97% of their startup code out of
shared libraries (Table 1) and share many libraries with one another
(Table 2), which is what inter-application persistence exploits.  This
module generates the corpus of synthetic libraries those experiments use.

Each library exports ``n_funcs`` functions named ``<stem>_fn<i>``; every
fourth function is a non-leaf calling two earlier ones, so libraries have
internal call structure (and therefore multi-trace translation units).
Each library also exports ``<stem>_init``, a driver that touches a spread
of the library's functions — the "library initialization" code GUI
startup burns its time in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.binfmt.image import Image, ImageKind, ImageBuilder
from repro.loader.linker import ImageStore
from repro.workloads.builder import leaf_function, nonleaf_function


@dataclass(frozen=True)
class LibrarySpec:
    """Parameters of one synthetic shared library."""

    path: str  # e.g. "libglib.so"
    n_funcs: int = 24
    func_size: int = 22
    seed: int = 0
    mtime: int = 1

    @property
    def stem(self) -> str:
        """Symbol prefix derived from the path ("libglib.so" -> "libglib")."""
        return self.path.split(".")[0].replace("-", "_")

    def function_names(self) -> List[str]:
        return ["%s_fn%d" % (self.stem, i) for i in range(self.n_funcs)]

    @property
    def init_symbol(self) -> str:
        return "%s_init" % self.stem


def build_library(spec: LibrarySpec) -> Image:
    """Generate the image for ``spec`` (deterministic in its seed)."""
    rng = random.Random(spec.seed ^ hash(spec.path) & 0xFFFF)
    builder = ImageBuilder(
        spec.path, ImageKind.SHARED_LIBRARY, mtime=spec.mtime
    )
    names = spec.function_names()
    for index, name in enumerate(names):
        if index >= 4 and index % 4 == 0:
            callees = [names[index - 1], names[index - 3]]
            fn = nonleaf_function(rng, spec.func_size + 7, callees)
        else:
            fn = leaf_function(rng, spec.func_size)
        builder.add_function(name, fn.code, symbol_refs=fn.symbol_refs)
    # The init driver touches a representative spread of the library.
    touched = names[:: max(1, len(names) // 8)]
    init = nonleaf_function(rng, spec.func_size + 5 + len(touched), touched)
    builder.add_function(spec.init_symbol, init.code, symbol_refs=init.symbol_refs)
    return builder.build()


def build_corpus(specs: Sequence[LibrarySpec]) -> ImageStore:
    """Build every library into a resolver the loader can use."""
    store = ImageStore()
    for spec in specs:
        store.add(build_library(spec))
    return store


def default_gui_corpus() -> Dict[str, LibrarySpec]:
    """The library set shared by the five GUI applications.

    Sizes are chosen so that library code dominates each app's startup
    footprint (Table 1's 80-97%) and so that the widely shared toolkit
    libraries (libc/libglib/libgtk/...) carry most of the code.
    """
    specs = [
        LibrarySpec("libc.so", n_funcs=40, func_size=20, seed=101),
        LibrarySpec("libglib.so", n_funcs=36, func_size=22, seed=102),
        LibrarySpec("libgtk.so", n_funcs=48, func_size=24, seed=103),
        LibrarySpec("libgdk.so", n_funcs=30, func_size=22, seed=104),
        LibrarySpec("libpango.so", n_funcs=24, func_size=20, seed=105),
        LibrarySpec("libcairo.so", n_funcs=24, func_size=22, seed=106),
        LibrarySpec("libxml.so", n_funcs=20, func_size=22, seed=107),
        LibrarySpec("libpng.so", n_funcs=16, func_size=20, seed=108),
        LibrarySpec("libz.so", n_funcs=12, func_size=18, seed=109),
        LibrarySpec("libssl.so", n_funcs=20, func_size=22, seed=110),
        LibrarySpec("libftp.so", n_funcs=16, func_size=20, seed=111),
        LibrarySpec("libvimcore.so", n_funcs=22, func_size=22, seed=112),
        LibrarySpec("libdiagram.so", n_funcs=18, func_size=22, seed=113),
        LibrarySpec("libarchive.so", n_funcs=18, func_size=22, seed=114),
        LibrarySpec("libimg.so", n_funcs=18, func_size=20, seed=115),
    ]
    return {spec.path: spec for spec in specs}
