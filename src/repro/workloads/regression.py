"""Regression-test driver: many short runs sharing one cache database.

The paper's motivating deployment (§2.2): regression environments run
thousands of short tests — "across many tests, the compiler performs
identical tasks" — where per-test translation cost can never amortize
within a test but amortizes perfectly *across* tests through the
persistent cache, which also accumulates newly discovered code so
"performance improves over time".

:class:`RegressionDriver` executes a sequence of (workload, input) test
cases, every case a fresh process attached to the same cache database,
and records the per-test cost curve.  It is the orchestration layer the
Oracle and gcc regression experiments use, and a realistic template for
driving the system in an actual test farm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.persist.database import CacheDatabase
from repro.persist.manager import PersistenceConfig
from repro.vm.client import Tool
from repro.workloads.harness import Workload, run_vm

#: One test case: a workload and the input (test) to run it on.
TestCase = Tuple[Workload, str]


@dataclass
class TestOutcome:
    """Result of one test under the driver."""

    index: int
    workload: str
    input: str
    cycles: float
    traces_translated: int
    traces_reused: int
    exit_status: int


@dataclass
class RegressionReport:
    """The cost curve of a full test sequence."""

    outcomes: List[TestOutcome] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(outcome.cycles for outcome in self.outcomes)

    @property
    def total_translations(self) -> int:
        return sum(outcome.traces_translated for outcome in self.outcomes)

    def cycles_by_test(self) -> List[float]:
        return [outcome.cycles for outcome in self.outcomes]

    def warmup_point(self, tolerance: float = 1.05) -> Optional[int]:
        """Index of the first test after which no test exceeds
        ``tolerance`` x the sequence's steady-state (minimum) cost for its
        (workload, input) pair; None if the sequence never settles."""
        steady = {}
        for outcome in self.outcomes:
            key = (outcome.workload, outcome.input)
            steady[key] = min(steady.get(key, outcome.cycles), outcome.cycles)
        for index in range(len(self.outcomes)):
            tail = self.outcomes[index:]
            if all(
                outcome.cycles
                <= tolerance * steady[(outcome.workload, outcome.input)]
                for outcome in tail
            ):
                return index
        return None

    def improvement_over_first_pass(self) -> float:
        """Fractional cost drop of the last occurrence of each test vs its
        first occurrence, averaged over distinct tests."""
        first = {}
        last = {}
        for outcome in self.outcomes:
            key = (outcome.workload, outcome.input)
            first.setdefault(key, outcome.cycles)
            last[key] = outcome.cycles
        if not first:
            return 0.0
        drops = [1 - last[key] / first[key] for key in first]
        return sum(drops) / len(drops)


class RegressionDriver:
    """Runs test sequences against one shared persistent cache database."""

    def __init__(
        self,
        database: CacheDatabase,
        tool_factory: Optional[Callable[[], Tool]] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        persistence_enabled: bool = True,
    ):
        self.database = database
        self.tool_factory = tool_factory
        self.cost_model = cost_model
        self.persistence_enabled = persistence_enabled

    def run_sequence(self, cases: Iterable[TestCase]) -> RegressionReport:
        """Execute the cases in order; every case is a fresh process."""
        report = RegressionReport()
        for index, (workload, input_name) in enumerate(cases):
            persistence = (
                PersistenceConfig(database=self.database)
                if self.persistence_enabled
                else None
            )
            result = run_vm(
                workload,
                input_name,
                tool=self.tool_factory() if self.tool_factory else None,
                persistence=persistence,
                cost_model=self.cost_model,
            )
            report.outcomes.append(
                TestOutcome(
                    index=index,
                    workload=workload.name,
                    input=input_name,
                    cycles=result.stats.total_cycles,
                    traces_translated=result.stats.traces_translated,
                    traces_reused=result.stats.traces_from_persistent,
                    exit_status=result.exit_status,
                )
            )
        return report


def round_robin_cases(
    workload: Workload, input_names: Sequence[str], rounds: int
) -> List[TestCase]:
    """``rounds`` passes over the inputs, in order — the Oracle unit-test
    pattern (each test is the phase sequence, repeated)."""
    cases: List[TestCase] = []
    for _ in range(rounds):
        cases.extend((workload, name) for name in input_names)
    return cases


def interleaved_cases(
    workloads: Sequence[Workload],
    input_names: Sequence[str],
    count: int,
) -> List[TestCase]:
    """``count`` tests cycling over (workload, input) pairs — a mixed
    test-farm schedule."""
    pairs = list(itertools.product(workloads, input_names))
    return [pairs[i % len(pairs)] for i in range(count)]
