"""Anti-instrumentation workloads: programs that attack transparency.

"Unveiling Dynamic Binary Instrumentation Techniques" (PAPERS.md)
catalogs how real programs detect or defeat DBI engines: they checksum
their own code, rewrite hot code in tight loops, probe the clock
around known-cost phases, and churn module load state.  The persistent
tier is only sound if the engine stays *transparent* under all of this
(paper §3.2.1's invalidation discipline): a program must read its
original code bytes, observe every self-write take effect, and see a
clock that behaves like retired work — under every dispatch tier and
whether its traces came from a fresh translation or a persisted cache.

Five programs, each folding what it observes into its output bytes and
exit status so one stale byte or skipped invalidation is visible in
the result:

* ``checksum`` — reads its own code pages (the hot kernel's and a
  prefix of ``main`` itself, i.e. the very page the reader executes
  from) via ``LD`` and folds the checksum into output between
  executions of the checksummed code.
* ``churn_hot`` — rewrites the first instruction of a hot, directly
  called (and therefore link-chained) function in a tight loop,
  alternating two encodings; every store must invalidate the live
  trace before the next call.
* ``churn_region`` — drives a three-stage ``jmp`` relay hot enough to
  fuse into a superblock region, then patches a *middle* member and
  re-runs the chain; the fused closure must not serve stale member
  code.
* ``churn_boundary`` — an unaligned 8-byte store that lands on a
  512-byte code-page boundary: its low half rewrites the tail of one
  page, its high half the first bytes of an indirectly called function
  starting exactly at the next page (the page-straddle case the SMC
  detector historically missed).
* ``dlopen_smc`` — interleaves dlopen/call/SMC/dlclose cycles: a
  patched plugin must run its new code, and the pristine reload after
  dlclose must *not* revive the modified traces stashed by
  module-aware retention.
* ``timer`` — polls ``SYS_CLOCK`` around fixed spin phases and
  *branches* on the deltas, writing both the raw deltas and the
  branch decisions; mid-run clock reads must be monotone, advance
  with retired work, and agree across dispatch tiers.

All programs read their iteration count from ``a2`` (the standard
``InputSpec.hot_iterations`` slot) and run at least once.  The
``transparency`` bench family (:mod:`repro.bench`) runs this suite
under interpreted/compiled/linked/background dispatch against the
interpreted oracle and across warm restarts over the sidecar, the
shared per-host store, and the cache-server daemon.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.binfmt.image import ImageBuilder, ImageKind
from repro.binfmt.sections import align_up
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.isa.encoding import encode
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.machine.syscalls import (
    SYS_CLOCK,
    SYS_DLCLOSE,
    SYS_DLOPEN,
    SYS_EXIT,
    SYS_WRITE,
)
from repro.workloads.builder import FunctionCode, InputSpec
from repro.workloads.harness import Workload

#: Code-page size of the machine's SMC detector (see repro.machine.cpu).
CODE_PAGE = 512

#: Suite members whose loops rewrite executed code; the bench family's
#: ``--check`` gate requires ``smc_invalidations > 0`` on each of them.
CHURN_WORKLOADS = (
    "churn_hot", "churn_region", "churn_boundary", "dlopen_smc",
)

#: Suite members whose output depends only on code bytes and register
#: state — never on the clock — so warm persisted runs (sidecar, shared
#: store, daemon) must reproduce the cold output byte for byte.  The
#: ``timer`` program is excluded by design: persisted traces legitimately
#: change the *cost* of a run (that is the whole point of the cache), so
#: its raw clock deltas differ warm vs. cold while staying bit-identical
#: across dispatch tiers under any one persistence configuration.
PERSISTED_WORKLOADS = (
    "checksum", "churn_hot", "churn_region", "churn_boundary", "dlopen_smc",
)


def _word_of(inst: Instruction) -> int:
    """The encoded instruction as a signed 64-bit store operand."""
    return int.from_bytes(encode(inst), "little", signed=True)


def _syscall(fn: FunctionCode, number: int) -> None:
    fn.emit(ins.movi(regs.RV, number))
    fn.emit(ins.syscall())


def _write_reg(fn: FunctionCode, reg: int) -> None:
    """Append ``reg``'s 8 bytes to the program output (via the stack)."""
    fn.emit(ins.st(regs.SP, reg, 0))
    fn.emit(ins.movi(regs.A0, 8))
    fn.emit(ins.or_(regs.A1, regs.SP, regs.ZERO))
    _syscall(fn, SYS_WRITE)


def _materialize(fn: FunctionCode, reg: int, value: int) -> None:
    """Build an arbitrary 64-bit value in ``reg`` (4 x 16-bit chunks).

    ``movi`` immediates are 32-bit, so encoded instruction words (whose
    high half is an imm field) are assembled by shift-and-or — the same
    trick a real anti-instrumentation payload uses to avoid carrying
    its patch bytes in a data section.
    """
    unsigned = value & 0xFFFF_FFFF_FFFF_FFFF
    fn.emit(ins.movi(reg, (unsigned >> 48) & 0xFFFF))
    for shift in (32, 16, 0):
        fn.emit(ins.shli(reg, reg, 16))
        chunk = (unsigned >> shift) & 0xFFFF
        if chunk:
            fn.emit(ins.ori(reg, reg, chunk))


def _back_branch(fn: FunctionCode, head: int, counter: int, limit: int) -> None:
    """``blt counter, limit, head`` with the image-relative offset."""
    here = len(fn.code)
    fn.emit(ins.blt(counter, limit, (head - (here + 1)) * INSTRUCTION_SIZE))


# -- checksum: self-reading code ---------------------------------------------

#: Words of ``main`` the checksum program reads from its own entry — a
#: prefix so the count does not depend on main's own final length.
_MAIN_PREFIX_WORDS = 16


def _build_checksum():
    image = ImageBuilder("adv/checksum", ImageKind.EXECUTABLE)

    # The checksummed kernel: a distinctive straight-line body leaving
    # its result in t12.  Executed (so translated) between reads.
    kernel = FunctionCode()
    kernel.emit(ins.movi(regs.T0 + 10, 0x1234))
    kernel.emit(ins.xori(regs.T0 + 10, regs.T0 + 10, 0x0FF))
    kernel.emit(ins.shli(regs.T0 + 11, regs.T0 + 10, 3))
    kernel.emit(ins.add(regs.T0 + 12, regs.T0 + 10, regs.T0 + 11))
    kernel.emit(ins.addi(regs.T0 + 12, regs.T0 + 12, 77))
    kernel.emit(ins.xori(regs.T0 + 12, regs.T0 + 12, 0x5A5A))
    kernel.emit(ins.ret())
    image.add_function("kernel", kernel.code)
    kernel_words = len(kernel.code)

    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.movi(regs.S0, 0))
    main.emit_call("kernel")
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 12))
    main.emit(ins.movi(regs.T0 + 4, 0))  # outer counter
    outer_head = len(main.code)

    def checksum_pass(symbol: str, words: int) -> None:
        """Fold ``words`` code words starting at ``symbol`` into s0."""
        main.symbol_refs.append((len(main.code), symbol))
        main.emit(ins.movi(regs.T0 + 1, 0))
        main.emit(ins.movi(regs.T0 + 2, words))
        main.emit(ins.movi(regs.T0 + 3, 0))
        head = len(main.code)
        main.emit(ins.ld(regs.T0 + 5, regs.T0 + 1, 0))
        main.emit(ins.xor(regs.S0, regs.S0, regs.T0 + 5))
        main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 5))
        main.emit(ins.addi(regs.T0 + 1, regs.T0 + 1, INSTRUCTION_SIZE))
        main.emit(ins.addi(regs.T0 + 3, regs.T0 + 3, 1))
        _back_branch(main, head, regs.T0 + 3, regs.T0 + 2)

    checksum_pass("kernel", kernel_words)
    # Read the page the reader itself executes from.
    checksum_pass("main", _MAIN_PREFIX_WORDS)
    _write_reg(main, regs.S0)
    main.emit_call("kernel")
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 12))
    main.emit(ins.addi(regs.T0 + 4, regs.T0 + 4, 1))
    _back_branch(main, outer_head, regs.T0 + 4, regs.S1)
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


# -- churn_hot: SMC on a hot, linked trace -----------------------------------

def _build_churn_hot():
    image = ImageBuilder("adv/churn-hot", ImageKind.EXECUTABLE)
    # patchme: movi t8, 1111 ; ret — the rewritten instruction.
    image.add_function(
        "patchme", [ins.movi(regs.T0 + 8, 1111), ins.ret()]
    )
    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.movi(regs.S0, 0))
    main.symbol_refs.append((len(main.code), "patchme"))
    main.emit(ins.movi(regs.T0 + 1, 0))  # t1 = &patchme
    _materialize(main, regs.T0 + 5, _word_of(ins.movi(regs.T0 + 8, 1111)))
    _materialize(main, regs.T0 + 6, _word_of(ins.movi(regs.T0 + 8, 2222)))
    main.emit(ins.movi(regs.T0 + 4, 0))
    head = len(main.code)
    # Patch to the alternate encoding, call, fold; restore, call, fold.
    main.emit(ins.st(regs.T0 + 1, regs.T0 + 6, 0))
    main.emit(ins.movi(regs.T0 + 8, 0))
    main.emit_call("patchme")
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))
    main.emit(ins.st(regs.T0 + 1, regs.T0 + 5, 0))
    main.emit(ins.movi(regs.T0 + 8, 0))
    main.emit_call("patchme")
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))
    _write_reg(main, regs.S0)
    main.emit(ins.addi(regs.T0 + 4, regs.T0 + 4, 1))
    _back_branch(main, head, regs.T0 + 4, regs.S1)
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


# -- churn_region: SMC on a fused superblock member --------------------------

#: Hot-loop trips per phase; must exceed the region-fusion hop threshold
#: (REGION_FUSE_THRESHOLD = 16 in repro.vm.compile) so the relay chain
#: actually fuses before the patch lands.
_REGION_PHASE_TRIPS = 24

#: Straight-line filler per relay stage, keeping each stage its own
#: trace (stages must not fit together under max_trace_insts).
_STAGE_FILLER = 14


def _stage_body(result_delta: int) -> FunctionCode:
    fn = FunctionCode()
    fn.emit(ins.addi(regs.T0 + 9, regs.T0 + 9, result_delta))
    for index in range(_STAGE_FILLER):
        fn.emit(ins.addi(regs.T0 + 10, regs.T0 + 10, index + 1))
        fn.emit(ins.xori(regs.T0 + 10, regs.T0 + 10, 0x33))
    return fn


def _build_churn_region():
    image = ImageBuilder("adv/churn-region", ImageKind.EXECUTABLE)
    # Relay built back to front so each jmp knows its target's vaddr.
    stage_c = _stage_body(3)
    stage_c.emit(ins.ret())
    vaddr_c = image.add_function("stage_c", stage_c.code)

    # stage_b's FIRST instruction is the patch target: movi t9, 5.
    stage_b = FunctionCode()
    stage_b.emit(ins.movi(regs.T0 + 9, 5))
    for index in range(_STAGE_FILLER):
        stage_b.emit(ins.addi(regs.T0 + 11, regs.T0 + 11, index + 2))
    stage_b.emit(ins.jmp(vaddr_c))
    vaddr_b = image.add_function(
        "stage_b", stage_b.code, relative_sites=[len(stage_b.code) - 1]
    )

    stage_a = _stage_body(0)
    stage_a.emit(ins.jmp(vaddr_b))
    image.add_function(
        "stage_a", stage_a.code, relative_sites=[len(stage_a.code) - 1]
    )

    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.movi(regs.S0, 0))
    main.symbol_refs.append((len(main.code), "stage_b"))
    main.emit(ins.movi(regs.T0 + 1, 0))  # t1 = &stage_b (patch site)
    _materialize(main, regs.T0 + 5, _word_of(ins.movi(regs.T0 + 9, 5)))
    _materialize(main, regs.T0 + 6, _word_of(ins.movi(regs.T0 + 9, 9)))
    main.emit(ins.movi(regs.T0 + 7, _REGION_PHASE_TRIPS))
    main.emit(ins.movi(regs.T0 + 4, 0))
    outer_head = len(main.code)

    def hot_phase() -> None:
        main.emit(ins.movi(regs.T0 + 3, 0))
        head = len(main.code)
        main.emit_call("stage_a")
        main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 9))
        main.emit(ins.addi(regs.T0 + 3, regs.T0 + 3, 1))
        _back_branch(main, head, regs.T0 + 3, regs.T0 + 7)

    hot_phase()  # fuse the chain
    main.emit(ins.st(regs.T0 + 1, regs.T0 + 6, 0))  # patch the member
    hot_phase()  # fused region must serve the new code
    main.emit(ins.st(regs.T0 + 1, regs.T0 + 5, 0))  # restore
    _write_reg(main, regs.S0)
    main.emit(ins.addi(regs.T0 + 4, regs.T0 + 4, 1))
    _back_branch(main, outer_head, regs.T0 + 4, regs.S1)
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


# -- churn_boundary: the page-straddling store -------------------------------

def _straddle_words() -> Tuple[int, int]:
    """The two 8-byte values the boundary store alternates between.

    The store lands at ``&patchme - 4``: its low half rewrites the imm
    field of the filler ``nop`` ending the previous page (kept zero,
    byte-identical), its high half rewrites the (opcode, rd, rs1, rs2)
    low half of ``patchme[0]`` — retargeting the ``movi`` between t8
    and t9 while the imm half stays in place.
    """
    nop_tail = encode(ins.nop())[4:8]
    to_t8 = encode(ins.movi(regs.T0 + 8, 500))[0:4]
    to_t9 = encode(ins.movi(regs.T0 + 9, 500))[0:4]
    word_t8 = int.from_bytes(nop_tail + to_t8, "little", signed=True)
    word_t9 = int.from_bytes(nop_tail + to_t9, "little", signed=True)
    return word_t8, word_t9


def _pad_to_page_boundary(image: ImageBuilder) -> int:
    """Pad ``.text`` with nops so the next function starts a new page.

    At least one filler word is always emitted, so the byte before the
    boundary is a known ``nop`` imm byte.  Returns the boundary vaddr.
    """
    size = image.text_size
    target = align_up(size + INSTRUCTION_SIZE, CODE_PAGE)
    pad = (target - size) // INSTRUCTION_SIZE
    image.add_function("pad_%d" % size, [ins.nop()] * pad)
    return target


def _build_churn_boundary():
    image = ImageBuilder("adv/churn-boundary", ImageKind.EXECUTABLE)
    word_t8, word_t9 = _straddle_words()

    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.movi(regs.S0, 0))
    main.symbol_refs.append((len(main.code), "patchme"))
    main.emit(ins.movi(regs.T0 + 1, 0))                 # t1 = &patchme
    main.emit(ins.addi(regs.T0 + 2, regs.T0 + 1, -4))   # t2 = store site
    _materialize(main, regs.T0 + 5, word_t8)
    _materialize(main, regs.T0 + 6, word_t9)
    main.emit(ins.movi(regs.T0 + 4, 0))
    head = len(main.code)
    # Retarget patchme's movi to t9 across the page boundary, call it
    # indirectly (its trace never overlaps the store's first page), and
    # fold both candidate registers — a stale trace leaves t9 zero.
    main.emit(ins.st(regs.T0 + 2, regs.T0 + 6, 0))
    main.emit(ins.movi(regs.T0 + 8, 0))
    main.emit(ins.movi(regs.T0 + 9, 0))
    main.emit(ins.callr(regs.T0 + 1))
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 9))
    main.emit(ins.st(regs.T0 + 2, regs.T0 + 5, 0))      # restore to t8
    main.emit(ins.movi(regs.T0 + 8, 0))
    main.emit(ins.movi(regs.T0 + 9, 0))
    main.emit(ins.callr(regs.T0 + 1))
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))
    main.emit(ins.shli(regs.T0 + 9, regs.T0 + 9, 1))
    main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 9))
    _write_reg(main, regs.S0)
    main.emit(ins.addi(regs.T0 + 4, regs.T0 + 4, 1))
    _back_branch(main, head, regs.T0 + 4, regs.S1)
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)

    boundary = _pad_to_page_boundary(image)
    # patchme starts exactly on the 512-byte boundary: movi t8, 500; ret.
    vaddr = image.add_function(
        "patchme", [ins.movi(regs.T0 + 8, 500), ins.ret()]
    )
    assert vaddr == boundary and vaddr % CODE_PAGE == 0
    image.set_entry("main")
    return image.build()


# -- dlopen_smc: module churn with self-modification -------------------------

def _build_plugin():
    builder = ImageBuilder("adv/plugin.so", ImageKind.SHARED_LIBRARY, mtime=3)
    builder.add_function(
        "plugin_entry",
        [
            ins.movi(regs.T0 + 8, 7),
            ins.addi(regs.T0 + 8, regs.T0 + 8, 3),
            ins.ret(),
        ],
    )
    return builder.build()


def _build_dlopen_smc():
    image = ImageBuilder("adv/plugin-host", ImageKind.EXECUTABLE)
    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.movi(regs.S0, 0))
    # Patched plugin_entry[0]: movi t8, 30 (the +3 tail still runs).
    _materialize(main, regs.T0 + 6, _word_of(ins.movi(regs.T0 + 8, 30)))
    main.emit(ins.movi(regs.T0 + 4, 0))
    head = len(main.code)

    def dlopen() -> None:
        main.emit(ins.movi(regs.A0, 0))
        _syscall(main, SYS_DLOPEN)
        main.emit(ins.or_(regs.T0 + 1, regs.RV, regs.ZERO))

    def dlclose() -> None:
        main.emit(ins.movi(regs.A0, 0))
        _syscall(main, SYS_DLCLOSE)

    def call_plugin() -> None:
        main.emit(ins.movi(regs.T0 + 8, 0))
        main.emit(ins.callr(regs.T0 + 1))
        main.emit(ins.add(regs.S0, regs.S0, regs.T0 + 8))

    dlopen()
    call_plugin()                                  # pristine: 10
    main.emit(ins.st(regs.T0 + 1, regs.T0 + 6, 0))  # SMC in the module
    call_plugin()                                  # patched: 33
    dlclose()
    dlopen()                                       # pristine reload
    call_plugin()                                  # 10 again, never 33
    dlclose()
    _write_reg(main, regs.S0)
    main.emit(ins.addi(regs.T0 + 4, regs.T0 + 4, 1))
    _back_branch(main, head, regs.T0 + 4, regs.S1)
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


# -- timer: clock probes around fixed phases ---------------------------------

#: Spin trips of the two probe phases; the second is deliberately
#: longer so the deltas order deterministically.
_TIMER_PHASES = (32, 96)

#: Delta threshold the probe branches on, in simulated cycles: between
#: the two phases' costs under either tier's cost model, so the branch
#: genuinely splits (one phase under, one over) instead of degenerating.
_TIMER_THRESHOLD = 400


def _build_timer():
    image = ImageBuilder("adv/timer", ImageKind.EXECUTABLE)
    main = FunctionCode()
    main.emit(ins.or_(regs.S1, regs.A2, regs.ZERO))
    main.emit(ins.movi(regs.S0, 0))
    main.emit(ins.movi(regs.T0 + 6, _TIMER_THRESHOLD))
    main.emit(ins.movi(regs.T0 + 4, 0))
    outer_head = len(main.code)
    for trips in _TIMER_PHASES:
        _syscall(main, SYS_CLOCK)
        main.emit(ins.or_(regs.T0 + 1, regs.RV, regs.ZERO))
        main.emit(ins.movi(regs.T0 + 2, 0))
        spin_head = len(main.code)
        main.emit(ins.addi(regs.T0 + 3, regs.T0 + 3, 5))
        main.emit(ins.xori(regs.T0 + 3, regs.T0 + 3, 9))
        main.emit(ins.addi(regs.T0 + 2, regs.T0 + 2, 1))
        main.emit(ins.movi(regs.T0 + 7, trips))
        _back_branch(main, spin_head, regs.T0 + 2, regs.T0 + 7)
        _syscall(main, SYS_CLOCK)
        main.emit(ins.sub(regs.T0 + 5, regs.RV, regs.T0 + 1))
        _write_reg(main, regs.T0 + 5)  # the raw delta
        # Branch on the delta: the anti-instrumentation decision point.
        main.emit(ins.blt(regs.T0 + 5, regs.T0 + 6, 2 * INSTRUCTION_SIZE))
        main.emit(ins.addi(regs.S0, regs.S0, 1))        # delta >= threshold
        main.emit(ins.beq(regs.ZERO, regs.ZERO, INSTRUCTION_SIZE))
        main.emit(ins.addi(regs.S0, regs.S0, 100))      # delta < threshold
    _write_reg(main, regs.S0)  # the decision trail
    main.emit(ins.addi(regs.T0 + 4, regs.T0 + 4, 1))
    _back_branch(main, outer_head, regs.T0 + 4, regs.S1)
    main.emit(ins.andi(regs.A0, regs.S0, 127))
    _syscall(main, SYS_EXIT)
    image.add_function("main", main.code, symbol_refs=main.symbol_refs)
    image.set_entry("main")
    return image.build()


def build_adversarial_suite() -> Dict[str, Workload]:
    """The anti-instrumentation suite, standard ``run`` inputs."""

    def workload(name, image, iterations, modules=()):
        return Workload(
            name=name,
            image=image,
            inputs={"run": InputSpec(name="run", hot_iterations=iterations)},
            modules=list(modules),
        )

    return {
        "checksum": workload("checksum", _build_checksum(), 6),
        "churn_hot": workload("churn_hot", _build_churn_hot(), 8),
        "churn_region": workload("churn_region", _build_churn_region(), 3),
        "churn_boundary": workload(
            "churn_boundary", _build_churn_boundary(), 8
        ),
        "dlopen_smc": workload(
            "dlopen_smc", _build_dlopen_smc(), 6, modules=[_build_plugin()]
        ),
        "timer": workload("timer", _build_timer(), 5),
    }
