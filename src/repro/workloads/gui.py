"""GUI application analogs (Table 1's five Linux desktop programs).

The paper evaluates GUI programs "only for their startup phase; the time
it takes for the graphic interface to be ready for user interaction"
(§4.1), and finds:

* startup under the VM is 20-100x slower than native (Figure 2(b)),
  because startup is almost entirely cold code;
* 80-97% of the startup code comes from shared libraries (Table 1);
* the applications share most of those libraries (Table 2), executing
  overlapping subsets of their code (Table 4) — the basis of
  inter-application persistence (Figure 8);
* File-Roller "replaces the operating system's signal handlers with its
  own, which requires Pin to intercept and emulate signals", giving it
  poor *translated-code* performance on top of VM overhead.

Every app's dependency list starts with the same canonical toolkit prefix
(libc, libglib, libgtk, libgdk, libpango), so the loader maps those
libraries at identical bases across applications — making their persisted
translations reusable across programs.  App-specific libraries load after
the prefix; where an app's middle dependencies differ (e.g. Gvim loads
libvimcore where others load libcairo), the downstream libraries land at
different bases and their traces are invalidated on inter-application
reuse, reproducing the paper's "falls back to retranslation" losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.loader.linker import ImageStore
from repro.machine.syscalls import SYS_KILL, SYS_SIGACTION
from repro.workloads.builder import AppBuilder, FunctionCode, InputSpec, leaf_function
from repro.workloads.corpus import LibrarySpec, build_corpus, default_gui_corpus
from repro.workloads.harness import Workload

#: The toolkit prefix every GUI app depends on, in canonical load order.
COMMON_PREFIX = ("libc.so", "libglib.so", "libgtk.so", "libgdk.so", "libpango.so")


@dataclass(frozen=True)
class GuiAppParams:
    """Generation parameters for one GUI application."""

    name: str
    seed: int
    #: Full dependency list, canonical order (prefix + app-specific).
    needed: Tuple[str, ...]
    #: Fraction of each library's functions the app executes at startup.
    lib_coverage: float
    #: Phase offset into each library's function list (so different apps
    #: execute different-but-overlapping subsets, Table 4).
    lib_phase: int
    #: Times each init block's body re-executes during startup; higher
    #: values amortize translation more (lower VM slowdown).
    init_repeat: int
    #: App-local startup code size in instructions (controls Table 1's
    #: % library code: Gvim has notably more application code).
    local_code: int
    #: Install a signal handler and raise signals during startup
    #: (File-Roller's emulation-bound behaviour).
    signals: int = 0


GUI_APPS: Dict[str, GuiAppParams] = {
    params.name: params
    for params in [
        GuiAppParams(
            "gftp", seed=31,
            needed=COMMON_PREFIX + ("libcairo.so", "libssl.so", "libftp.so"),
            lib_coverage=0.80, lib_phase=0, init_repeat=6, local_code=120,
        ),
        GuiAppParams(
            "gvim", seed=32,
            needed=COMMON_PREFIX + ("libvimcore.so",),
            lib_coverage=0.75, lib_phase=3, init_repeat=14, local_code=700,
        ),
        GuiAppParams(
            "dia", seed=33,
            needed=COMMON_PREFIX + ("libcairo.so", "libxml.so", "libdiagram.so"),
            lib_coverage=0.85, lib_phase=6, init_repeat=5, local_code=140,
        ),
        # File-Roller loads libarchive *before* libcairo, so its libcairo
        # (and everything after) maps at a different base than in the other
        # applications — inter-application reuse of those traces conflicts
        # and falls back to retranslation (paper §4.5's "inherent
        # limitation"), unless position-independent translations are on.
        GuiAppParams(
            "file-roller", seed=34,
            needed=COMMON_PREFIX + ("libarchive.so", "libcairo.so", "libz.so"),
            lib_coverage=0.80, lib_phase=9, init_repeat=4, local_code=110,
            signals=40,
        ),
        GuiAppParams(
            "gqview", seed=35,
            needed=COMMON_PREFIX + ("libcairo.so", "libpng.so", "libimg.so"),
            lib_coverage=0.82, lib_phase=12, init_repeat=8, local_code=130,
        ),
    ]
}

#: Functions called per init block (the blocks chunk the library surface).
_CALLS_PER_BLOCK = 8

_SIGNAL_NUMBER = 15


def _selected_functions(spec: LibrarySpec, params: GuiAppParams) -> List[str]:
    """The subset of ``spec``'s functions this app executes at startup."""
    names = spec.function_names()
    count = max(1, int(len(names) * params.lib_coverage))
    start = params.lib_phase % len(names)
    return [names[(start + i) % len(names)] for i in range(count)]


def _signal_init_function(handler_symbol: str, raises: int) -> FunctionCode:
    """Install a handler, then deliver ``raises`` signals to self."""
    fn = FunctionCode()
    fn.emit(ins.addi(regs.SP, regs.SP, -16))
    fn.emit(ins.st(regs.SP, regs.LR, 0))
    fn.emit(ins.movi(regs.A0, _SIGNAL_NUMBER))
    # a1 = &handler; the imm carries a symbol relocation.
    fn.symbol_refs.append((len(fn.code), handler_symbol))
    fn.emit(ins.movi(regs.A1, 0))
    fn.emit(ins.movi(regs.RV, SYS_SIGACTION))
    fn.emit(ins.syscall())
    fn.emit(ins.st(regs.SP, regs.S0, 8))
    fn.emit(ins.movi(regs.S0, 0))
    loop_head = len(fn.code)
    fn.emit(ins.movi(regs.A0, _SIGNAL_NUMBER))
    fn.emit(ins.movi(regs.RV, SYS_KILL))
    fn.emit(ins.syscall())
    fn.emit(ins.addi(regs.S0, regs.S0, 1))
    fn.emit(ins.movi(regs.T0, raises))
    here = len(fn.code)
    fn.emit(ins.blt(regs.S0, regs.T0, (loop_head - (here + 1)) * 8))
    fn.emit(ins.ld(regs.S0, regs.SP, 8))
    fn.emit(ins.ld(regs.LR, regs.SP, 0))
    fn.emit(ins.addi(regs.SP, regs.SP, 16))
    fn.emit(ins.ret())
    return fn


def build_gui_app(
    params: GuiAppParams,
    corpus: Dict[str, LibrarySpec],
) -> Workload:
    """Generate one GUI application against the shared corpus."""
    app = AppBuilder("gui/%s" % params.name, seed=params.seed, needed=params.needed)

    if params.signals:
        app.add_function("signal_handler", leaf_function(app.rng, 8))
        app.add_custom_init(
            "signal_init",
            _signal_init_function("signal_handler", params.signals),
        )

    # Library startup: per dependency, chunked init blocks that call the
    # library's init symbol and the app's selected function subset.
    block_index = 0
    for lib_path in params.needed:
        spec = corpus[lib_path]
        selected = [spec.init_symbol] + _selected_functions(spec, params)
        for chunk_start in range(0, len(selected), _CALLS_PER_BLOCK):
            chunk = selected[chunk_start : chunk_start + _CALLS_PER_BLOCK]
            app.add_init_block(
                "lib_init_%d" % block_index,
                size=6 + len(chunk),
                subfunctions=0,
                library_calls=chunk,
                repeat=params.init_repeat,
            )
            block_index += 1

    # App-local startup code (the non-library percentage of Table 1).
    local_blocks = max(1, params.local_code // 90)
    for local_index in range(local_blocks):
        app.add_init_block(
            "local_init_%d" % local_index,
            size=params.local_code // local_blocks,
            subfunctions=2,
            repeat=params.init_repeat,
        )

    # Once the interface is up, the app idles waiting for the user: a tiny
    # hot kernel stands in for the ready event loop.
    app.set_hot_kernel(size=16, helpers=1, helper_size=8)
    image = app.build()

    inputs = {
        "startup": InputSpec(name="startup", features=frozenset(), hot_iterations=60)
    }
    return Workload(name=params.name, image=image, inputs=inputs)


def build_gui_suite(
    corpus: Dict[str, LibrarySpec] = None,
) -> Tuple[Dict[str, Workload], ImageStore]:
    """Build all five apps against one shared library store."""
    corpus = corpus or default_gui_corpus()
    store = build_corpus(list(corpus.values()))
    apps = {}
    for name, params in GUI_APPS.items():
        workload = build_gui_app(params, corpus)
        workload.store = store
        apps[name] = workload
    return apps, store


def common_library_matrix(apps: Dict[str, Workload]) -> Dict[str, Dict[str, int]]:
    """Table 2: number of common libraries between application pairs."""
    matrix: Dict[str, Dict[str, int]] = {}
    for name_a, app_a in apps.items():
        deps_a = set(app_a.image.needed)
        matrix[name_a] = {}
        for name_b, app_b in apps.items():
            deps_b = set(app_b.image.needed)
            matrix[name_a][name_b] = len(deps_a & deps_b)
    return matrix
