"""Convenience harness: run a workload natively or under the VM.

Experiments use this to avoid repeating the load/attach/run boilerplate.
A :class:`Workload` bundles an executable image with its library resolver
and its named inputs; :func:`run_native` and :func:`run_vm` execute one
input end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.binfmt.image import Image
from repro.loader.layout import LoadLayout
from repro.loader.linker import ImageStore, LoadedProcess, load_process
from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.machine.cpu import Machine, RunResult, run_native as _interpret
from repro.persist.manager import PersistenceConfig, PersistentCacheSession
from repro.vm.client import Tool
from repro.vm.engine import Engine, VMConfig, VMRunResult
from repro.workloads.builder import InputSpec


@dataclass
class Workload:
    """An executable, its libraries, and its inputs."""

    name: str
    image: Image
    store: ImageStore = field(default_factory=ImageStore)
    inputs: Dict[str, InputSpec] = field(default_factory=dict)
    #: Images loadable at run time through dlopen (index = position).
    modules: list = field(default_factory=list)

    def input(self, name: str) -> InputSpec:
        try:
            return self.inputs[name]
        except KeyError as exc:
            raise KeyError(
                "workload %r has no input %r (have: %s)"
                % (self.name, name, ", ".join(sorted(self.inputs)))
            ) from exc

    def load(self, layout: Optional[LoadLayout] = None) -> LoadedProcess:
        return load_process(
            self.image, self.store, layout=layout,
            optional_modules=self.modules,
        )


class FirstOutputTimer(bytearray):
    """Output buffer that stamps the host clock at the first byte.

    Drop-in replacement for ``OSState.output`` (a plain bytearray that
    syscall handling only ever ``extend``\\ s): ``first_output_s`` holds
    ``time.perf_counter()`` at the moment the first non-empty write
    lands, or None if the program never wrote.  Subtracting the
    caller's pre-run stamp gives time-to-first-output (TTFO) — the
    metric the tiered warm-up bench family gates, since background
    compilation's whole point is taking host ``compile()`` off this
    path.
    """

    def __init__(self) -> None:
        super().__init__()
        self.first_output_s: Optional[float] = None

    def extend(self, data) -> None:  # type: ignore[override]
        if self.first_output_s is None and len(data):
            self.first_output_s = time.perf_counter()
        super().extend(data)


def run_native(
    workload: Workload,
    input_name: str,
    layout: Optional[LoadLayout] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> RunResult:
    """Interpret one input directly on the simulated hardware."""
    process = workload.load(layout)
    machine = Machine(process)
    machine.set_args(*workload.input(input_name).to_args())
    return _interpret(machine, cost_model)


def run_vm(
    workload: Workload,
    input_name: str,
    tool: Optional[Tool] = None,
    persistence: Optional[PersistenceConfig] = None,
    layout: Optional[LoadLayout] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    vm_config: Optional[VMConfig] = None,
    output_timer: Optional[FirstOutputTimer] = None,
) -> VMRunResult:
    """Run one input under the DBI engine.

    ``persistence`` (when given) attaches a fresh
    :class:`~repro.persist.manager.PersistentCacheSession` for this run —
    sessions are single-use, mirroring one VM process lifetime.

    ``output_timer`` (when given) replaces the process's output buffer
    so the harness can observe time-to-first-output; the run's
    observable results are unaffected (same bytes, stats, status).
    """
    process = workload.load(layout)
    session = (
        PersistentCacheSession(persistence) if persistence is not None else None
    )
    engine = Engine(
        tool=tool,
        cost_model=cost_model,
        config=vm_config,
        persistence=session,
    )
    machine = None
    if output_timer is not None:
        machine = Machine(process)
        machine.os_state.output = output_timer
    return engine.run(
        process, args=workload.input(input_name).to_args(), machine=machine
    )
