"""Chain-heavy bench corpora for the ``trace_linking`` family.

The compiled tier's cross-trace linking (:mod:`repro.vm.engine`'s chain
trampoline) and superblock fusion (:mod:`repro.vm.compile`'s region
closures) are wall-clock optimizations of exactly one control-flow
shape: stable chains of traces connected by *direct* exits — ``jmp``
relays and hot branch back-edges whose successor never changes.  This
module builds the three corpora the wall-clock suite times, one per
chain regime:

* ``relay_4`` — four straight-line blocks in a ring, each ending in a
  ``jmp`` to the next, with a countdown back-branch closing the loop.
  The whole ring fits inside one superblock region
  (:data:`repro.vm.compile.REGION_MAX_MEMBERS`), so steady state is one
  region entry plus one back-edge hop per iteration.
* ``relay_12`` — twelve blocks, longer than a region may grow.  The
  fusion driver must cap the first region and fuse the tail into a
  second one; steady state crosses a region boundary every iteration.
* ``branchy_6`` — six blocks where the third takes a deterministic
  parity side exit through a detour block every other iteration.  The
  side exit leaves the fused region mid-body back onto the member
  trace's own branch slot, and the region must extend as its tail
  links prove hot — both seams the differential suite pins down.

Every block is shorter than one trace
(:data:`repro.vm.trace.DEFAULT_MAX_TRACE_INSTS`) and ends in an
unconditional transfer, so blocks and traces are one-to-one by
construction and the chain shape is exact, not emergent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.binfmt.image import ImageBuilder
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.isa.instructions import INSTRUCTION_SIZE
from repro.machine.syscalls import SYS_EXIT
from repro.workloads.builder import InputSpec
from repro.workloads.harness import Workload

#: Straight-line ALU work per block: sized like a real basic block
#: (5-10 instructions), the regime where per-trace dispatch overhead —
#: exactly what linking and fusion remove — dominates execution.
BLOCK_WORK = 5

#: ``(corpus name, relay blocks, detour?, loop iterations)``.
CORPORA: Tuple[Tuple[str, int, bool, int], ...] = (
    ("relay_4", 4, False, 4000),
    ("relay_8", 8, False, 2500),
    ("relay_12", 12, False, 1500),
    ("branchy_6", 6, True, 3000),
)


def _block_work(code: List[object], block: int) -> None:
    """Deterministic ALU churn for one relay block.

    Scratch registers are picked outside the loop-control set (t2/t4
    belong to ``main``'s relay skeleton).
    """
    acc = regs.T0 + 8
    tmp = regs.T0 + 9
    code.append(ins.addi(acc, acc, block + 1))
    for step in range(BLOCK_WORK - 3):
        op = (block + step) % 4
        if op == 0:
            code.append(ins.xori(tmp, acc, 0x3C + block))
        elif op == 1:
            code.append(ins.addi(tmp, tmp, step + 1))
        elif op == 2:
            code.append(ins.shli(tmp, tmp, (step % 3) + 1))
        else:
            code.append(ins.add(acc, acc, tmp))
    code.append(ins.andi(acc, acc, 0xFFFF))
    code.append(ins.addi(regs.A0, regs.A0, block + 1))


def build_chain_app(
    name: str, n_blocks: int, detour: bool, iters: int
) -> Workload:
    """One corpus: ``n_blocks`` jmp-relay blocks looped ``iters`` times.

    The relay lives in a single function so every transfer target is a
    known instruction index; ``jmp`` immediates are emitted
    image-relative and rebased at load through RELATIVE relocations.
    """
    if n_blocks < 2:
        raise ValueError("a relay needs at least two blocks: %d" % n_blocks)
    builder = ImageBuilder(name)
    cnt = regs.T0 + 2
    par = regs.T0 + 4

    code: List[object] = []
    relative_sites: List[int] = []
    code.append(ins.movi(regs.A0, 0))
    code.append(ins.movi(cnt, iters))

    block_starts: List[int] = []
    detour_branch_site = -1
    for block in range(n_blocks):
        block_starts.append(len(code))
        _block_work(code, block)
        if detour and block == 2:
            # Parity side exit: every other iteration detours before
            # rejoining the relay at the next block.  The branch offset
            # is patched once the detour block is placed.
            code.append(ins.andi(par, cnt, 1))
            detour_branch_site = len(code)
            code.append(ins.bne(par, regs.ZERO, 0))
        if block < n_blocks - 1:
            # jmp to the very next instruction: a no-op transfer at the
            # machine level, but an unconditional DIRECT exit to the
            # trace selector — it pins the block/trace boundary.
            here = len(code)
            relative_sites.append(here)
            code.append(ins.jmp((here + 1) * INSTRUCTION_SIZE))

    # Loop control closes the last block: countdown, back-branch to the
    # relay head, then the exit sequence on fall-through.
    code.append(ins.addi(cnt, cnt, -1))
    here = len(code)
    code.append(
        ins.bne(cnt, regs.ZERO, (block_starts[0] - (here + 1)) * INSTRUCTION_SIZE)
    )
    code.append(ins.andi(regs.A0, regs.A0, 127))  # exit-status range
    code.append(ins.movi(regs.RV, SYS_EXIT))
    code.append(ins.syscall())

    if detour:
        detour_start = len(code)
        _block_work(code, n_blocks)
        here = len(code)
        relative_sites.append(here)
        code.append(ins.jmp(block_starts[3] * INSTRUCTION_SIZE))
        site = detour_branch_site
        code[site] = ins.bne(
            par, regs.ZERO, (detour_start - (site + 1)) * INSTRUCTION_SIZE
        )

    builder.add_function("main", code, relative_sites=relative_sites)
    builder.set_entry("main")
    return Workload(
        name=name,
        image=builder.build(),
        inputs={"run": InputSpec(name="run")},
    )


def build_chain_suite() -> Dict[str, Workload]:
    """The three ``trace_linking`` corpora, by name."""
    return {
        name: build_chain_app(name, n_blocks, detour, iters)
        for name, n_blocks, detour, iters in CORPORA
    }
