"""Startup-heavy corpus for the tiered warm-up (background compile) bench.

The off-path compile pipeline (:mod:`repro.vm.compilequeue`) pays off
exactly when a run's cold phase is *compile-dominated*: lots of distinct
traces that each execute about once before the program produces its
first observable output.  Synchronous compilation then charges every
host ``compile()`` to the time-to-first-output (TTFO) critical path for
bodies whose single execution could have been interpreted, which is the
CGO'07 paper's cold-start story (startup code is translated, executed
once, and never revisited).

Each app here is built to that profile:

* many unconditional init blocks with ``repeat=1`` — straight-line
  trees of functions, so traces and cold code are one-to-one and every
  body runs exactly once before the marker below;
* one hand-built ``announce`` init registered *after* all the cold
  blocks, emitting the program's first ``SYS_WRITE`` — the TTFO marker
  the bench harness stamps (see ``FirstOutputTimer`` in
  :mod:`repro.bench`);
* a small hot kernel afterwards so steady state exists but stays cheap
  (TTFO, not throughput, is what this family times).

The corpus doubles as the ``repro prewarm`` gate corpus: apps are
rebuilt *by name* inside worker processes (images are deterministic per
seed), so only strings ever cross the process boundary.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.machine.syscalls import SYS_WRITE
from repro.workloads.builder import AppBuilder, FunctionCode, InputSpec
from repro.workloads.harness import Workload

#: ``name -> (seed, init blocks, block size, hot iterations)``.  Six
#: apps so a prewarm sweep over ``--jobs 1/2/4`` has work to partition;
#: seeds differ so the apps share no trace bodies (prewarm must compile
#: each app, not coast on cross-app digest dedup).
WARMUP_APPS: Dict[str, Tuple[int, int, int, int]] = {
    "startup_a": (0xA11CE, 36, 96, 50),
    "startup_b": (0xB0B52, 36, 96, 50),
    "startup_c": (0xC4C70, 32, 104, 50),
    "startup_d": (0xD00D1, 32, 104, 50),
    "startup_e": (0xE66E2, 28, 112, 50),
    "startup_f": (0xF00F3, 28, 112, 50),
}

#: Small corpus for smoke tests and the ``prewarm-smoke`` make target.
TINY_APPS: Tuple[str, ...] = ("startup_a", "startup_b")

#: The app the ``tiered_warmup`` bench family gates TTFO on (largest
#: cold footprint of the six).
GATE_APP = "startup_a"


def _announce_function(stamp: int) -> FunctionCode:
    """A leaf that emits the app's first output: 8 stamp bytes.

    ``SYS_WRITE`` takes the length in ``a0`` and the address in ``a1``
    (:func:`repro.machine.syscalls._execute`); the stamp goes through
    this function's own stack frame.
    """
    fn = FunctionCode()
    fn.emit(ins.addi(regs.SP, regs.SP, -16))
    fn.emit(ins.movi(regs.T0, stamp))
    fn.emit(ins.st(regs.SP, regs.T0, 0))
    fn.emit(ins.movi(regs.A0, 8))
    fn.emit(ins.or_(regs.A1, regs.SP, regs.ZERO))
    fn.emit(ins.movi(regs.RV, SYS_WRITE))
    fn.emit(ins.syscall())
    fn.emit(ins.addi(regs.SP, regs.SP, 16))
    fn.emit(ins.ret())
    return fn


def build_warmup_workload(name: str) -> Workload:
    """Build one warm-up app by name (deterministic per seed)."""
    try:
        seed, blocks, block_size, hot_iterations = WARMUP_APPS[name]
    except KeyError as exc:
        raise KeyError(
            "unknown warmup app %r (have: %s)"
            % (name, ", ".join(sorted(WARMUP_APPS)))
        ) from exc
    builder = AppBuilder("warmup/%s" % name, seed=seed)
    # Cold startup first: every block tree is translated, compiled (in
    # sync mode), and executed exactly once before the output marker.
    for index in range(blocks):
        builder.add_init_block(
            "init_%02d" % index, size=block_size, subfunctions=3, repeat=1
        )
    builder.add_custom_init("announce", _announce_function(seed & 0xFFFF))
    builder.set_hot_kernel(size=32, helpers=1, helper_size=10)
    image = builder.build()
    inputs = {
        "default": InputSpec(name="default", hot_iterations=hot_iterations),
    }
    return Workload(name=name, image=image, inputs=inputs)


def warmup_corpus(names: Tuple[str, ...] = ()) -> Dict[str, Workload]:
    """Build the full (or a named subset of the) warm-up corpus."""
    selected = names or tuple(sorted(WARMUP_APPS))
    return {name: build_warmup_workload(name) for name in selected}
