"""Oracle-database analog: a multi-process regression-test workload.

The paper evaluates Oracle 10g XE in a regression-test setting (§4.1):
every test is five *phases* — Start, Mount, Open, Work, Close — and
"each process is a separate invocation of the program's binary to serve
specific needs of the database".  Because the phases perform highly
specialized tasks, code coverage between them is low (~55% average,
Figure 4), with the detailed structure of Table 3(b): Start is small and
isolated, Open is the largest and covers most of every other phase
(91% of Close's code), and so on.

The analog reproduces that structure with a *block membership model*:
the binary carries feature blocks, each present in a chosen subset of
phases, with sizes tuned so the measured coverage matrix lands in the
paper's bands.  The database is syscall-heavy (every unit of work makes
a system call), which is what gives Oracle its large translated-code
overhead under the VM — with persistence eliminating translation, the
residual slowdown is emulation, exactly the paper's observation that
persistence took the unit test from ~1300s to ~490s against an 80s
native run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.workloads.builder import AppBuilder, FeatureBlock, InputSpec
from repro.workloads.harness import Workload

#: Phase order of one regression test.
PHASES = ("Start", "Mount", "Open", "Work", "Close")


@dataclass(frozen=True)
class OracleBlock:
    """One feature block of the database binary."""

    index: int
    size: int
    phases: FrozenSet[str]


#: The block membership model.  Sizes (instructions) are calibrated so the
#: measured coverage matrix matches Table 3(b)'s shape: Start tiny and
#: isolated; Open dominant; Close ~90% covered by Open.
ORACLE_BLOCKS: Tuple[OracleBlock, ...] = (
    OracleBlock(0, 420, frozenset({"Start"})),
    OracleBlock(1, 140, frozenset({"Mount"})),
    OracleBlock(2, 280, frozenset({"Open"})),
    OracleBlock(3, 320, frozenset({"Work"})),
    OracleBlock(4, 40, frozenset({"Close"})),
    OracleBlock(5, 300, frozenset({"Mount", "Open"})),
    OracleBlock(6, 300, frozenset({"Mount", "Open", "Work", "Close"})),
    OracleBlock(7, 260, frozenset({"Open", "Work"})),
    OracleBlock(8, 110, frozenset({"Open", "Close"})),
    OracleBlock(9, 60, frozenset({"Mount", "Work"})),
    OracleBlock(10, 90, frozenset({"Start", "Mount"})),
    OracleBlock(11, 90, frozenset({"Start", "Open"})),
    OracleBlock(12, 85, frozenset({"Start", "Close"})),
)

#: Hot-kernel trip counts per phase.  Work performs the unit test's sixty
#: transactions; the control phases do less dynamic work.
PHASE_ITERATIONS: Dict[str, int] = {
    "Start": 220,
    "Mount": 330,
    "Open": 520,
    "Work": 680,
    "Close": 220,
}

#: Transactions of the Work phase's unit test (60 transactions over 10
#: tables, §4.1); the Work hot kernel runs iterations = transactions *
#: PHASE_ITERATIONS scale internally via PHASE_ITERATIONS["Work"].
UNIT_TEST_TRANSACTIONS = 60


def phase_features(phase: str) -> FrozenSet[int]:
    """Feature-block indices present in ``phase``."""
    return frozenset(
        block.index for block in ORACLE_BLOCKS if phase in block.phases
    )


def expected_coverage_matrix() -> Dict[str, Dict[str, float]]:
    """Coverage predicted by the block model (before any measurement).

    ``matrix[a][b]`` = fraction of phase ``a``'s code also executed by
    phase ``b`` — the layout of Table 3(b).  Includes the always-executed
    base code.
    """
    base = 100 * 2  # two init blocks, see build_oracle()
    sizes = {}
    for phase in PHASES:
        sizes[phase] = base + sum(
            block.size for block in ORACLE_BLOCKS if phase in block.phases
        )
    matrix: Dict[str, Dict[str, float]] = {}
    for phase_a in PHASES:
        matrix[phase_a] = {}
        for phase_b in PHASES:
            shared = base + sum(
                block.size
                for block in ORACLE_BLOCKS
                if phase_a in block.phases and phase_b in block.phases
            )
            matrix[phase_a][phase_b] = shared / sizes[phase_a]
    return matrix


def build_oracle(seed: int = 41) -> Workload:
    """Generate the database binary and its five phase 'inputs'."""
    app = AppBuilder("oracle/db", seed=seed)
    for init_index in range(2):
        app.add_init_block("init_%d" % init_index, size=100, subfunctions=2)
    for block in ORACLE_BLOCKS:
        app.add_feature(
            FeatureBlock(
                index=block.index,
                size=block.size,
                subfunctions=max(2, block.size // 70),
            )
        )
    # The work loop makes a system call per unit of work: the database is
    # emulation-bound under the VM even after translation is amortized.
    app.set_hot_kernel(
        size=30, helpers=2, helper_size=12, memory_ops=2,
        syscalls_per_iteration=1,
    )
    image = app.build()

    inputs = {
        phase: InputSpec(
            name=phase,
            features=phase_features(phase),
            hot_iterations=PHASE_ITERATIONS[phase],
        )
        for phase in PHASES
    }
    return Workload(name="oracle", image=image, inputs=inputs)


def unit_test_sequence() -> List[str]:
    """The phase order of one full regression test."""
    return list(PHASES)
