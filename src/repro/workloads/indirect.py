"""Indirect-branch-heavy bench corpora for the ``indirect_heavy`` family.

The compiled tier's polymorphic indirect-branch inline caches
(:mod:`repro.vm.compile`, docs/performance.md) are a wall-clock
optimization of exactly one control-flow shape: ``jr``/``callr``/``ret``
sites whose dynamic target set repeats.  This module builds the three
corpora the wall-clock suite times, one per chain regime:

* ``alternating_pair`` — one ``callr`` site flip-flopping between two
  helpers.  Monomorphic ICs missed here on *every* call; a depth-2
  chain converts the whole loop into depth-1 hits (move-to-front keeps
  the pair in the first two entries).
* ``rotating_3`` — the site cycles through three helpers, exercising
  the chain's middle depths (steady state hits at depth 2).
* ``megamorphic`` — the site cycles through eight helpers, more targets
  than :data:`repro.vm.stats.IC_CHAIN_DEPTH` holds.  The chain misses
  by design; the corpus pins down that a bounded chain degrades to the
  dispatcher path instead of thrashing (the paper's indirect "switch"
  shape).

Every helper returns through ``ret`` — itself an indirect branch with
its own (mostly monomorphic) chain — so call *and* return prediction
are both on the timed path, mirroring Pin's indirect-branch chaining
workload mix.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.binfmt.image import ImageBuilder
from repro.isa import instructions as ins
from repro.isa import registers as regs
from repro.machine.cpu import HEAP_BASE
from repro.machine.syscalls import SYS_EXIT
from repro.workloads.builder import InputSpec
from repro.workloads.harness import Workload

#: Helpers in every image (the megamorphic corpus cycles through all).
N_HELPERS = 8

#: Straight-line ALU work per helper body: enough weight that compiled
#: dispatch has something to win on beyond the branch itself.
HELPER_WORK = 12

#: ``(corpus name, targets cycled, call-loop iterations)``.
CORPORA: Tuple[Tuple[str, int, int], ...] = (
    ("alternating_pair", 2, 4000),
    ("rotating_3", 3, 3000),
    ("megamorphic", N_HELPERS, 2000),
)


def _helper(index: int) -> List[object]:
    """One leaf helper: deterministic ALU churn, accumulate, return.

    Scratch registers are picked outside the dispatcher loop's set
    (t0/t2/t3/t5/t6 belong to ``main``).
    """
    acc = regs.T0 + 8
    tmp = regs.T0 + 9
    body = [ins.addi(acc, acc, index + 1)]
    for step in range(HELPER_WORK):
        op = (index + step) % 4
        if op == 0:
            body.append(ins.xori(tmp, acc, 0x55 + index))
        elif op == 1:
            body.append(ins.addi(tmp, tmp, step + 1))
        elif op == 2:
            body.append(ins.shli(tmp, tmp, (step % 3) + 1))
        else:
            body.append(ins.add(acc, acc, tmp))
    body.append(ins.andi(acc, acc, 0xFFFF))
    body.append(ins.addi(regs.A0, regs.A0, index + 1))
    body.append(ins.ret())
    return body


def build_indirect_app(name: str, n_targets: int, iters: int) -> Workload:
    """One corpus: a table-driven ``callr`` loop over ``n_targets``.

    The dispatch table lives at ``HEAP_BASE`` (helper addresses are
    run-time data, so the branch is genuinely indirect); the cycling
    index resets by compare-and-branch, which works for any target
    count — the rotating-3 corpus is deliberately not a power of two.
    """
    if not 1 <= n_targets <= N_HELPERS:
        raise ValueError("n_targets out of range: %d" % n_targets)
    builder = ImageBuilder(name)
    for i in range(N_HELPERS):
        builder.add_function("h%d" % i, _helper(i))

    t0, t2, t3, t5, t6 = (regs.T0 + i for i in (0, 2, 3, 5, 6))
    code: List[object] = []
    refs: List[Tuple[int, str]] = []
    # Dispatch table at HEAP_BASE: table[i] = &h_i.
    code.append(ins.movi(t0, HEAP_BASE))
    for i in range(n_targets):
        refs.append((len(code), "h%d" % i))
        code.append(ins.movi(t6, 0))              # t6 = &h_i    [reloc]
        code.append(ins.st(t0, t6, i * 8))

    code.append(ins.movi(t3, 0))                  # t3 = index
    code.append(ins.movi(t2, iters))              # t2 = countdown
    head = len(code)
    code.append(ins.shli(t5, t3, 3))
    code.append(ins.add(t5, t0, t5))
    code.append(ins.ld(t5, t5, 0))                # t5 = table[index]
    code.append(ins.callr(t5))
    # index = (index + 1) % n_targets, branch-and-reset so any target
    # count works (no power-of-two mask requirement).
    code.append(ins.addi(t3, t3, 1))
    code.append(ins.movi(t6, n_targets))
    code.append(ins.slt(t6, t3, t6))              # t6 = index < n
    here = len(code)
    code.append(ins.bne(t6, regs.ZERO, (here + 2 - (here + 1)) * 8))
    code.append(ins.movi(t3, 0))
    code.append(ins.addi(t2, t2, -1))
    here = len(code)
    code.append(ins.bne(t2, regs.ZERO, (head - (here + 1)) * 8))

    code.append(ins.andi(regs.A0, regs.A0, 127))  # exit-status range
    code.append(ins.movi(regs.RV, SYS_EXIT))
    code.append(ins.syscall())
    builder.add_function("main", code, symbol_refs=refs)
    builder.set_entry("main")
    return Workload(
        name=name,
        image=builder.build(),
        inputs={"run": InputSpec(name="run")},
    )


def build_indirect_suite() -> Dict[str, Workload]:
    """The three ``indirect_heavy`` corpora, by name."""
    return {
        name: build_indirect_app(name, n_targets, iters)
        for name, n_targets, iters in CORPORA
    }
