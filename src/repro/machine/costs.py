"""The cycle cost model.

Every experiment in the paper compares *time*: native execution vs. running
under the VM, VM (translation) overhead vs. translated-code execution, with
vs. without a persistent cache.  The reproduction replaces wall-clock time
with deterministic simulated cycles, charged according to this model.

Calibration targets (see DESIGN.md §5, all ratios from the paper):

* translation is expensive relative to execution — a cold instruction costs
  ~2 orders of magnitude more to translate than to run, which is what makes
  GUI startup 20-100x slower under the VM (Figure 2(b)) and lets 176.gcc
  spend >60% of its time translating (Figure 2(a));
* translated code runs slightly slower than native (translated-code
  overhead: indirect-branch resolution, syscall emulation);
* loading a trace from a persistent cache is vastly cheaper than
  re-translating it, but not free (mmap + demand paging, §3.2.3);
* instrumentation adds compile-time cost per instrumented site and run-time
  cost per executed analysis callback (Figure 5(b)).

All values are floats in "cycles"; totals are reported in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle charges for every machine/VM event."""

    # -- native hardware ----------------------------------------------------
    native_inst: float = 1.0
    native_syscall: float = 50.0

    # -- translated-code execution (code-cache residency) --------------------
    translated_inst: float = 1.12
    #: Extra charge when an indirect transfer must be resolved through the
    #: translation map instead of a direct link.
    indirect_resolution: float = 18.0
    #: Emulating a system call on the application's behalf (paper: signal
    #: and syscall emulation is expensive; File-Roller's poor translated
    #: performance comes from emulation).
    syscall_emulation: float = 420.0
    #: Emulating a signal delivery (File-Roller replaces signal handlers).
    signal_emulation: float = 2500.0

    # -- VM (compilation unit / dispatcher) ----------------------------------
    #: Context switch out of the code cache into the VM and back.
    vm_entry: float = 160.0
    #: Fixed cost of compiling one trace.
    trace_compile_fixed: float = 900.0
    #: Per-instruction cost of compiling a trace.
    trace_compile_per_inst: float = 190.0
    #: Per-point *additional* compile cost when a tool instruments
    #: (weighted by the point's compile_weight: bridging analysis code is
    #: the expensive part of instrumented translation — the paper's
    #: memory-reference instrumentation tripled Oracle's VM overhead).
    instrument_compile_per_inst: float = 260.0
    #: Patching one branch link between traces.
    link_patch: float = 25.0
    #: Flushing the code cache (discard everything).
    cache_flush: float = 20000.0
    #: Handling one self-modifying-code event (invalidate overlapping
    #: traces + decode state).
    smc_invalidation: float = 1200.0
    #: Re-registering one retained trace when its module reloads
    #: (module-aware translation, after Li et al. [19]).
    module_reattach: float = 20.0

    # -- analysis (tool) execution -------------------------------------------
    #: Cost of invoking one analysis callback (the callback itself may add
    #: per-call work on top, see repro.vm.client).
    analysis_call: float = 1.0

    # -- persistent cache -----------------------------------------------------
    #: Opening + mapping a persistent cache file and checking its keys.
    pcache_open: float = 6000.0
    #: Demand-paging one persisted trace into use on first execution.
    pcache_trace_load: float = 28.0
    #: Demand-paging the persisted data structures for one trace.
    pcache_meta_load: float = 10.0
    #: Computing + checking a key at a library-load interception.
    pcache_key_check: float = 120.0
    #: Writing the cache at exit: fixed + per persisted trace.
    pcache_write_fixed: float = 8000.0
    pcache_write_per_trace: float = 6.0
    #: Invalidating one persisted trace (conflict, relocation, unbacked).
    pcache_invalidate_trace: float = 1.5

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The model used throughout the evaluation unless a bench overrides it.
DEFAULT_COST_MODEL = CostModel()
