"""System call numbers, OS-side state, and the syscall dispatcher.

The synthetic OS provides just enough surface for the workloads:

====  ==========  =====================================================
 #    name        semantics
====  ==========  =====================================================
 1    EXIT        terminate; a0 = status (ends the run; under the VM
                  this is also the persistent-cache write point)
 2    WRITE       append a0 bytes starting at address a1 to the output
 3    GETPID      rv = process id
 4    CLOCK       rv = cycles consumed so far (truncated)
 5    BRK         grow the heap by a0 bytes; rv = old break address
 6    RAND        rv = next value of a deterministic 64-bit LCG
 7    SIGACTION   install handler a1 for signal a0 (File-Roller-style
                  signal-handler replacement; expensive to emulate)
 8    KILL        deliver signal a0 to self (runs the installed handler
                  to completion before returning)
 9    THREAD_     spawn a cooperatively scheduled thread at entry a0
      CREATE      with argument a1; rv = new thread id
 10   YIELD       rotate to the next runnable thread
 11   GETTID      rv = calling thread's id
 12   DLOPEN      load optional module a0; rv = its base address
 13   DLCLOSE     unload optional module a0
====  ==========  =====================================================

EXIT ends the *calling thread*; the process ends — and the VM writes its
persistent cache — when the last thread exits (paper §3.2.2).

Arguments arrive in ``a0``-``a3``; the syscall number in ``rv``; results
return in ``rv``.  Unknown numbers raise :class:`SyscallError` — silent
failure would mask workload bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

SYS_EXIT = 1
SYS_WRITE = 2
SYS_GETPID = 3
SYS_CLOCK = 4
SYS_BRK = 5
SYS_RAND = 6
SYS_SIGACTION = 7
SYS_KILL = 8
SYS_THREAD_CREATE = 9
SYS_YIELD = 10
SYS_GETTID = 11
SYS_DLOPEN = 12
SYS_DLCLOSE = 13

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_WRITE: "write",
    SYS_GETPID: "getpid",
    SYS_CLOCK: "clock",
    SYS_BRK: "brk",
    SYS_RAND: "rand",
    SYS_SIGACTION: "sigaction",
    SYS_KILL: "kill",
    SYS_THREAD_CREATE: "thread_create",
    SYS_YIELD: "yield",
    SYS_GETTID: "gettid",
    SYS_DLOPEN: "dlopen",
    SYS_DLCLOSE: "dlclose",
}

_LCG_MULTIPLIER = 6364136223846793005
_LCG_INCREMENT = 1442695040888963407
_MASK64 = (1 << 64) - 1

#: The value-carrying nondeterminism surface of the synthetic OS: the
#: syscalls whose *results* can differ between otherwise-identical runs
#: (different host environment, different VM version's cycle accounting,
#: a reseeded process).  The record-and-replay tier (:mod:`repro.replay`)
#: logs exactly these values and substitutes them on replay; everything
#: else the OS returns is a pure function of program state.  GETTID is
#: included because its value follows the scheduling decisions, which
#: replay also pins.
NONDET_SYSCALLS = frozenset(
    {SYS_GETPID, SYS_CLOCK, SYS_RAND, SYS_GETTID}
)


class SyscallError(Exception):
    """Raised for unknown syscall numbers or bad arguments."""


class UnwiredClockError(RuntimeError):
    """``SYS_CLOCK`` was dispatched before an execution engine wired
    :attr:`OSState.clock`.

    Historically the default clock silently returned 0, so a
    mis-assembled harness read bogus-but-plausible timestamps instead of
    failing.  The default now raises; the interpreter and the VM engine
    both install a real clock before the first instruction executes.
    """


def _unwired_clock() -> int:
    raise UnwiredClockError(
        "SYS_CLOCK dispatched before the execution engine wired"
        " OSState.clock (Interpreter and Engine.run both do this at"
        " startup; direct OSState users must wire their own)"
    )


@dataclass
class SyscallResult:
    """Outcome of one syscall."""

    value: int = 0
    #: The *calling thread* exited; the process ends when its last thread
    #: does (the executor decides, via the machine's thread table).
    exited: bool = False
    exit_status: int = 0
    #: Original-code address of a signal handler that must run now, if any.
    signal_handler: Optional[int] = None
    #: Name, for per-syscall accounting.
    name: str = ""
    #: THREAD_CREATE: (entry address, argument for the new thread's a0).
    spawn: Optional[tuple] = None
    #: YIELD: the executor should rotate to the next runnable thread.
    yielded: bool = False
    #: DLOPEN: module index to load (rv becomes its base address).
    dlopen: Optional[int] = None
    #: DLCLOSE: module index to unload.
    dlclose: Optional[int] = None


@dataclass
class OSState:
    """Per-process OS state shared by the interpreter and the VM."""

    pid: int = 1000
    output: bytearray = field(default_factory=bytearray)
    heap_break: int = 0
    heap_limit: int = 0
    rng_state: int = 0x5DEECE66D
    signal_handlers: Dict[int, int] = field(default_factory=dict)
    syscall_counts: Dict[str, int] = field(default_factory=dict)
    #: Thread id of the currently scheduled thread (set by the executor).
    current_tid: int = 1
    #: Reads current consumed cycles, wired in by the execution engine.
    #: The default raises :class:`UnwiredClockError` — returning a fake 0
    #: here used to mask harnesses that forgot to wire a real clock.
    clock: Callable[[], int] = field(default=_unwired_clock)
    #: Record/replay seam: an object with an
    #: ``on_syscall(number, name, result) -> result`` method, consulted
    #: after every *completed* syscall.  Recording hooks log the result;
    #: replay hooks substitute the logged value for the
    #: :data:`NONDET_SYSCALLS` subset.  ``None`` (the default) costs one
    #: attribute check per syscall.
    nondet_hook: Optional[object] = None

    def next_random(self) -> int:
        self.rng_state = (
            self.rng_state * _LCG_MULTIPLIER + _LCG_INCREMENT
        ) & _MASK64
        return self.rng_state >> 16


def dispatch_syscall(
    os_state: OSState,
    number: int,
    args: List[int],
    read_bytes: Callable[[int, int], bytes],
) -> SyscallResult:
    """Execute one system call against ``os_state``.

    Args:
        os_state: The process's OS-side state.
        number: Syscall number (from ``rv``).
        args: Values of ``a0``-``a3``.
        read_bytes: Memory reader for WRITE.

    Raises:
        SyscallError: Unknown number.
    """
    name = SYSCALL_NAMES.get(number)
    if name is None:
        raise SyscallError("unknown syscall %d" % number)
    result = _execute(os_state, number, name, args, read_bytes)
    # Count only *completed* syscalls: a raising write/brk must not
    # perturb the counts, or replay stat-diffing picks up phantom noise.
    os_state.syscall_counts[name] = os_state.syscall_counts.get(name, 0) + 1
    hook = os_state.nondet_hook
    if hook is not None:
        result = hook.on_syscall(number, name, result)
    return result


def _execute(
    os_state: OSState,
    number: int,
    name: str,
    args: List[int],
    read_bytes: Callable[[int, int], bytes],
) -> SyscallResult:
    if number == SYS_EXIT:
        return SyscallResult(exited=True, exit_status=args[0], name=name)
    if number == SYS_WRITE:
        length, addr = args[0], args[1]
        if length < 0:
            raise SyscallError("write with negative length")
        os_state.output.extend(read_bytes(addr, length))
        return SyscallResult(value=length, name=name)
    if number == SYS_GETPID:
        return SyscallResult(value=os_state.pid, name=name)
    if number == SYS_CLOCK:
        return SyscallResult(value=int(os_state.clock()), name=name)
    if number == SYS_BRK:
        grow = args[0]
        old_break = os_state.heap_break
        if grow > 0:
            if old_break + grow > os_state.heap_limit:
                raise SyscallError("heap exhausted")
            os_state.heap_break = old_break + grow
        return SyscallResult(value=old_break, name=name)
    if number == SYS_RAND:
        return SyscallResult(value=os_state.next_random(), name=name)
    if number == SYS_SIGACTION:
        signal, handler = args[0], args[1]
        os_state.signal_handlers[signal] = handler
        return SyscallResult(name=name)
    if number == SYS_KILL:
        handler = os_state.signal_handlers.get(args[0])
        return SyscallResult(signal_handler=handler, name=name)
    if number == SYS_THREAD_CREATE:
        entry, argument = args[0], args[1]
        return SyscallResult(spawn=(entry, argument), name=name)
    if number == SYS_YIELD:
        return SyscallResult(yielded=True, name=name)
    if number == SYS_GETTID:
        return SyscallResult(value=os_state.current_tid, name=name)
    if number == SYS_DLOPEN:
        return SyscallResult(dlopen=args[0], name=name)
    if number == SYS_DLCLOSE:
        return SyscallResult(dlclose=args[0], name=name)
    raise AssertionError("unreachable")
