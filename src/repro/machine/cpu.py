"""The simulated CPU: register file, execution core, native interpreter.

Two layers share the execution core:

* :class:`Interpreter` — "the hardware": runs a loaded process natively at
  1 cycle/instruction.  This is the baseline every VM measurement is
  compared against.
* the DBI engine (:mod:`repro.vm`) — uses the same :class:`ExecutionContext`
  semantics to execute *translated* traces out of the code cache, so
  translated execution is bit-identical to native execution (Pin does not
  transform application code) while cycle accounting differs.

Control-flow values (link register, indirect targets) always hold
*original* program addresses — the transparency property that lets the VM
map them through the translation map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.encoding import decode
from repro.isa.instructions import INSTRUCTION_SIZE, Instruction
from repro.isa import registers as regs
from repro.loader.linker import LoadedProcess
from repro.loader.mapper import to_signed_word
from repro.machine.costs import CostModel, DEFAULT_COST_MODEL
from repro.machine.syscalls import (
    OSState,
    SyscallResult,
    dispatch_syscall,
)

STACK_BASE = 0x7F00_0000
STACK_SIZE = 1 << 20
HEAP_BASE = 0x6000_0000
HEAP_SIZE = 4 << 20

#: Address of the thread-exit shim: three instructions in an *anonymous*
#: mapping (so the VM treats them as unbacked, never-persisted code) that
#: a spawned thread returns into if its entry function simply ``ret``s.
THREAD_EXIT_STUB = 0x7FF0_0000

#: Gap between consecutive per-thread stacks.
_THREAD_STACK_STRIDE = STACK_SIZE + 0x1_0000

#: Self-modification detection granularity: 512-byte code pages.
CODE_PAGE_SHIFT = 9

_MASK64 = (1 << 64) - 1


class MachineFault(Exception):
    """Raised on illegal execution (bad fetch, division by zero, ...)."""

    def __init__(self, message: str, pc: Optional[int] = None):
        if pc is not None:
            message = "pc=0x%x: %s" % (pc, message)
        super().__init__(message)
        self.pc = pc


class StepEvent:
    """Side information from executing one instruction.

    Allocated once per *event-producing* instruction (syscalls, halts) —
    never per ordinary step — and ``__slots__``-backed so the rare
    allocations that do happen stay cheap.
    """

    __slots__ = ("syscall", "is_indirect", "is_signal_delivery")

    def __init__(
        self,
        syscall: Optional[SyscallResult] = None,
        is_indirect: bool = False,
        is_signal_delivery: bool = False,
    ):
        self.syscall = syscall
        self.is_indirect = is_indirect
        self.is_signal_delivery = is_signal_delivery

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StepEvent(syscall=%r, is_indirect=%r, is_signal_delivery=%r)" % (
            self.syscall, self.is_indirect, self.is_signal_delivery,
        )


class Thread:
    """One thread of execution: its register file and saved PC.

    ``__slots__``-backed: thread objects are touched on every cooperative
    switch and compared by identity (``threads.index``), so neither a
    ``__dict__`` nor dataclass value-equality is wanted here.
    """

    __slots__ = ("tid", "registers", "pc", "alive")

    def __init__(
        self,
        tid: int,
        registers: List[int],
        pc: int = 0,
        alive: bool = True,
    ):
        self.tid = tid
        self.registers = registers
        self.pc = pc
        self.alive = alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Thread(tid=%d, pc=0x%x, alive=%r)" % (self.tid, self.pc, self.alive)


@dataclass
class Machine:
    """A loaded process plus mutable execution state.

    ``registers`` always aliases the register file of the *currently
    scheduled* thread; the execution core never needs to know about
    threading.  Threads are cooperatively scheduled: the executor switches
    only at ``yield``/thread-exit system calls, so interleaving is
    deterministic and identical between native and VM execution.
    """

    process: LoadedProcess
    os_state: OSState = field(default_factory=OSState)
    registers: List[int] = field(default_factory=lambda: [0] * regs.NUM_REGISTERS)
    decode_cache: Dict[int, Instruction] = field(default_factory=dict)
    uop_cache: Dict[int, tuple] = field(default_factory=dict)
    threads: List[Thread] = field(default_factory=list)
    current_thread: int = 0
    #: 512-byte page numbers that held code we executed; stores into these
    #: pages are self-modifying-code events (decode caches are purged and
    #: registered listeners — e.g. the VM's trace invalidator — fire).
    executed_code_pages: set = field(default_factory=set)
    #: Callbacks invoked with the written address on a code write.
    code_write_listeners: List = field(default_factory=list)
    #: Code pages that have been written: their traces no longer match
    #: any file on disk and must never be persisted (paper §3.2.1).
    modified_code_pages: set = field(default_factory=set)
    #: Callbacks invoked with ("load"|"unload", mapping) on dlopen/dlclose.
    module_listeners: List = field(default_factory=list)

    def __post_init__(self) -> None:
        space = self.process.space
        space.map_anonymous(STACK_BASE, STACK_SIZE, name="[stack]")
        space.map_anonymous(HEAP_BASE, HEAP_SIZE, name="[heap]")
        self.os_state.heap_break = HEAP_BASE
        self.os_state.heap_limit = HEAP_BASE + HEAP_SIZE
        self.registers[regs.SP] = STACK_BASE + STACK_SIZE - 64
        self.registers[regs.FP] = self.registers[regs.SP]
        self.threads.append(Thread(tid=1, registers=self.registers))
        self.os_state.current_tid = 1
        # Thread-exit shim: movi rv, SYS_EXIT; movi a0, 0; syscall.
        from repro.isa import instructions as _ins
        from repro.isa.encoding import encode_all as _encode_all
        from repro.machine.syscalls import SYS_EXIT as _SYS_EXIT

        stub = space.map_anonymous(THREAD_EXIT_STUB, 64, name="[thread-exit]")
        stub.data[:24] = _encode_all(
            [_ins.movi(regs.RV, _SYS_EXIT), _ins.movi(regs.A0, 0), _ins.syscall()]
        )

    # -- threading ---------------------------------------------------------

    def create_thread(self, entry: int, argument: int) -> Thread:
        """Spawn a thread starting at ``entry`` with ``a0 = argument``.

        The thread gets its own stack mapping and returns into the
        thread-exit shim if its entry function returns.
        """
        tid = max(thread.tid for thread in self.threads) + 1
        registers = [0] * regs.NUM_REGISTERS
        stack_base = STACK_BASE - (tid - 1) * _THREAD_STACK_STRIDE
        self.process.space.map_anonymous(
            stack_base, STACK_SIZE, name="[stack:t%d]" % tid
        )
        registers[regs.SP] = stack_base + STACK_SIZE - 64
        registers[regs.FP] = registers[regs.SP]
        registers[regs.A0] = argument
        registers[regs.LR] = THREAD_EXIT_STUB
        thread = Thread(tid=tid, registers=registers, pc=entry)
        self.threads.append(thread)
        return thread

    def runnable_threads(self) -> List[Thread]:
        return [thread for thread in self.threads if thread.alive]

    def switch_to(self, thread: Thread) -> None:
        self.registers = thread.registers
        self.current_thread = self.threads.index(thread)
        self.os_state.current_tid = thread.tid

    def schedule_next(self, current_pc: Optional[int]) -> Optional[int]:
        """Save the running thread's PC and rotate to the next runnable.

        ``current_pc=None`` marks the running thread as exited.  Returns
        the PC to resume at, or None when no runnable thread remains.
        """
        running = self.threads[self.current_thread]
        if current_pc is None:
            running.alive = False
        else:
            running.pc = current_pc
        candidates = [
            (index, thread)
            for index, thread in enumerate(self.threads)
            if thread.alive
        ]
        hook = self.os_state.nondet_hook
        kind = "exit" if current_pc is None else "yield"
        if not candidates:
            if hook is not None:
                hook.on_schedule(kind, [], None)
            return None
        # Round-robin starting after the current slot.
        for index, thread in candidates:
            if index > self.current_thread:
                break
        else:
            index, thread = candidates[0]
        if hook is not None:
            # Record/replay seam: recording logs the decision, replay may
            # substitute a (runnable) thread id to pin the interleaving.
            chosen_tid = hook.on_schedule(
                kind, [t.tid for _, t in candidates], thread.tid
            )
            if chosen_tid != thread.tid:
                for index, candidate in candidates:
                    if candidate.tid == chosen_tid:
                        thread = candidate
                        break
        self.switch_to(thread)
        return thread.pc

    def fetch(self, pc: int) -> Instruction:
        """Fetch + decode (memoized; invalidated on self-modification)."""
        inst = self.decode_cache.get(pc)
        if inst is None:
            try:
                raw = self.process.space.read_bytes(pc, INSTRUCTION_SIZE)
            except Exception as exc:
                raise MachineFault("fetch from unmapped memory", pc) from exc
            inst = decode(raw)
            self.decode_cache[pc] = inst
            self.executed_code_pages.add(pc >> CODE_PAGE_SHIFT)
        return inst

    def dlopen(self, index: int) -> int:
        """Load optional module ``index``; return its base address."""
        mapping = self.process.load_module(index)
        for listener in self.module_listeners:
            listener("load", mapping)
        return mapping.base

    def dlclose(self, index: int) -> None:
        """Unload optional module ``index``, purging decode state.

        Listeners fire *before* the unmap so they can still resolve
        addresses inside the dying mapping (the persistence manager
        converts retained traces for write-back at this point).
        """
        mapping = self.process.loaded_modules.get(index)
        if mapping is None:
            from repro.loader.linker import LinkError

            raise LinkError("module %d is not loaded" % index)
        for listener in self.module_listeners:
            listener("unload", mapping)
        self.process.unload_module(index)
        for cached_pc in [
            pc for pc in self.decode_cache
            if mapping.base <= pc < mapping.end
        ]:
            del self.decode_cache[cached_pc]
            self.uop_cache.pop(cached_pc, None)
        # A reload maps a pristine copy: page tracking for the dead range
        # must not leak into the next incarnation.
        first = mapping.base >> CODE_PAGE_SHIFT
        last = (mapping.end - 1) >> CODE_PAGE_SHIFT
        for page in range(first, last + 1):
            self.executed_code_pages.discard(page)
            self.modified_code_pages.discard(page)

    def on_code_write(self, addr: int) -> None:
        """A store hit a page we executed code from: purge the decode
        caches for every page the 8-byte write touches and notify
        listeners once per page (the VM evicts traces).

        A word store at ``page_end - 4`` modifies the following page
        too; treating the write as single-page left stale decodes and
        stale compiled traces live on the second page.
        """
        first = addr >> CODE_PAGE_SHIFT
        last = (addr + 7) >> CODE_PAGE_SHIFT
        for page in range(first, last + 1):
            self.modified_code_pages.add(page)
            start = page << CODE_PAGE_SHIFT
            end = start + (1 << CODE_PAGE_SHIFT)
            for cached_pc in [
                pc for pc in self.decode_cache if start <= pc < end
            ]:
                del self.decode_cache[cached_pc]
                self.uop_cache.pop(cached_pc, None)
            # Listeners key their eviction off the page containing the
            # address they receive, so each touched page gets its own
            # notification with an address inside that page.
            page_addr = addr if page == first else start
            for listener in self.code_write_listeners:
                listener(page_addr)

    def fetch_uop(self, pc: int):
        """Fetch + decode to a micro-op tuple (memoized)."""
        uop = self.uop_cache.get(pc)
        if uop is None:
            uop = self.fetch(pc).as_tuple()
            self.uop_cache[pc] = uop
        return uop

    def set_args(self, *values: int) -> None:
        """Place program arguments in a0, a1, ... before starting."""
        for index, value in enumerate(values):
            self.registers[regs.A0 + index] = value


# Opcode integer constants for the micro-op fast path, ordered below by
# expected dynamic frequency.
_NOP = 0x00
_ADD, _SUB, _MUL, _DIV = 0x01, 0x02, 0x03, 0x04
_AND, _OR, _XOR, _SHL, _SHR, _SLT = 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A
_ADDI, _ANDI, _ORI, _XORI, _SHLI, _SHRI = 0x10, 0x11, 0x12, 0x13, 0x14, 0x15
_LUI, _MOVI = 0x16, 0x17
_LD, _ST = 0x20, 0x21
_BEQ, _BNE, _BLT, _BGE = 0x30, 0x31, 0x32, 0x33
_JMP, _CALL, _JR, _CALLR, _RET = 0x38, 0x39, 0x3A, 0x3B, 0x3C
_SYSCALL, _HALT = 0x40, 0x41

_LR = regs.LR
_ZERO = regs.ZERO


# -- per-op semantics shared by both dispatch tiers ---------------------------
#
# The engine executes translated traces in one of two tiers (see
# repro.vm.engine): the *interpreted* reference tier (step_uop below) and
# the *compiled* tier (repro.vm.compile), which specializes each trace
# into a straight-line Python closure.  Everything the two tiers could
# disagree on lives here, next to step_uop, so the semantics are
# maintained in one place:
#
# * UOP_VALUE_EXPRESSIONS — the value computation of every ALU/move
#   micro-op, as a Python expression template the compiler inlines.
#   Placeholders: ``{rs1}``/``{rs2}`` are source register indexes,
#   ``{imm}`` the literal immediate, ``{sh}`` the pre-masked shift
#   amount (``imm & 63``).  ``r`` is the live register file.
# * OVERFLOW_SAFE_OPS — ops whose result provably stays inside the
#   signed 64-bit range, letting the compiler skip the wrap check that
#   step_uop applies on every register write.
# * syscall_uop_step / halt_step_event — the event-producing terminators,
#   called (not inlined) by both tiers.
#
# The dispatch-equivalence suite (tests/test_dispatch_equivalence.py)
# asserts the tiers produce bit-identical results over the full corpus.

UOP_VALUE_EXPRESSIONS: Dict[int, str] = {
    _ADD: "r[{rs1}] + r[{rs2}]",
    _SUB: "r[{rs1}] - r[{rs2}]",
    _MUL: "r[{rs1}] * r[{rs2}]",
    _AND: "r[{rs1}] & r[{rs2}]",
    _OR: "r[{rs1}] | r[{rs2}]",
    _XOR: "r[{rs1}] ^ r[{rs2}]",
    _SHL: "r[{rs1}] << (r[{rs2}] & 63)",
    _SHR: "(r[{rs1}] & 18446744073709551615) >> (r[{rs2}] & 63)",
    _SLT: "1 if r[{rs1}] < r[{rs2}] else 0",
    _ADDI: "r[{rs1}] + {imm}",
    _ANDI: "r[{rs1}] & {imm}",
    _ORI: "r[{rs1}] | {imm}",
    _XORI: "r[{rs1}] ^ {imm}",
    _SHLI: "r[{rs1}] << {sh}",
    _SHRI: "(r[{rs1}] & 18446744073709551615) >> {sh}",
    _LUI: "{imm} << 16",
    _MOVI: "{imm}",
}

#: Ops that cannot leave the signed 64-bit range: bitwise ops of in-range
#: operands stay in range, SLT yields 0/1, MOVI/LUI immediates are 32-bit
#: (so ``imm << 16`` fits in 48 bits).  SHRI is also safe when the masked
#: shift amount is non-zero (the compiler checks per-site); SHR/SHL and
#: the arithmetic ops keep the wrap check.
OVERFLOW_SAFE_OPS = frozenset(
    {_AND, _OR, _XOR, _ANDI, _ORI, _XORI, _SLT, _MOVI, _LUI}
)


def syscall_uop_step(machine: "Machine", next_pc: int):
    """SYSCALL micro-op semantics, shared by both dispatch tiers.

    Returns ``(resume_pc_or_None, StepEvent)`` exactly as
    :meth:`ExecutionContext.step_uop` does for the SYSCALL opcode.
    """
    r = machine.registers
    result = dispatch_syscall(
        machine.os_state,
        r[regs.RV],
        [r[regs.A0], r[regs.A1], r[regs.A2], r[regs.A3]],
        machine.process.space.read_bytes,
    )
    event = StepEvent(syscall=result)
    if result.exited:
        return None, event
    r[regs.RV] = to_signed_word(result.value)
    if result.signal_handler is not None:
        # Deliver the signal: synchronous call of the handler.
        event.is_signal_delivery = True
        r[_LR] = next_pc
        return result.signal_handler, event
    return next_pc, event


def halt_step_event() -> StepEvent:
    """The HALT terminator's exit event, shared by both dispatch tiers."""
    return StepEvent(
        syscall=SyscallResult(exited=True, exit_status=0, name="halt")
    )


class ExecutionContext:
    """Executes instructions against a :class:`Machine`.

    The core entry point is :meth:`step_uop`, which takes a flattened
    ``(op, rd, rs1, rs2, imm)`` micro-op tuple (see
    :meth:`repro.isa.instructions.Instruction.as_tuple`) and returns the
    next original PC (or None after exit) plus a :class:`StepEvent` — or
    None in place of the event for ordinary instructions (the overwhelmingly
    common case; avoiding the allocation keeps the simulation fast).

    :meth:`step` is the :class:`Instruction`-typed convenience wrapper.
    """

    def __init__(self, machine: Machine):
        self.machine = machine

    def step(
        self, inst: Instruction, pc: int
    ) -> "tuple[Optional[int], Optional[StepEvent]]":
        return self.step_uop(inst.as_tuple(), pc)

    def step_uop(
        self, uop, pc: int
    ) -> "tuple[Optional[int], Optional[StepEvent]]":
        machine = self.machine
        r = machine.registers
        op, rd, rs1, rs2, imm = uop
        next_pc = pc + INSTRUCTION_SIZE

        # Hot straight-line operations first.
        if op == _ADDI:
            value = r[rs1] + imm
        elif op == _ADD:
            value = r[rs1] + r[rs2]
        elif op == _BNE:
            if r[rs1] != r[rs2]:
                next_pc += imm
            return next_pc, None
        elif op == _LD:
            try:
                value = machine.process.space.read_word(r[rs1] + imm)
            except Exception as exc:
                raise MachineFault(str(exc), pc) from exc
        elif op == _ST:
            addr = r[rs1] + imm
            try:
                machine.process.space.write_word(addr, r[rs2])
            except Exception as exc:
                raise MachineFault(str(exc), pc) from exc
            # An 8-byte store may straddle a 512-byte page boundary, so
            # both the first and last written byte's pages are checked.
            pages = machine.executed_code_pages
            if (addr >> CODE_PAGE_SHIFT) in pages or (
                (addr + 7) >> CODE_PAGE_SHIFT
            ) in pages:
                machine.on_code_write(addr)
            return next_pc, None
        elif op == _MOVI:
            value = imm
        elif op == _BEQ:
            if r[rs1] == r[rs2]:
                next_pc += imm
            return next_pc, None
        elif op == _BLT:
            if r[rs1] < r[rs2]:
                next_pc += imm
            return next_pc, None
        elif op == _BGE:
            if r[rs1] >= r[rs2]:
                next_pc += imm
            return next_pc, None
        elif op == _CALL:
            r[_LR] = next_pc
            return imm, None
        elif op == _RET:
            return r[_LR], None
        elif op == _JMP:
            return imm, None
        elif op == _XOR:
            value = r[rs1] ^ r[rs2]
        elif op == _SUB:
            value = r[rs1] - r[rs2]
        elif op == _MUL:
            value = r[rs1] * r[rs2]
        elif op == _AND:
            value = r[rs1] & r[rs2]
        elif op == _OR:
            value = r[rs1] | r[rs2]
        elif op == _SLT:
            value = 1 if r[rs1] < r[rs2] else 0
        elif op == _ANDI:
            value = r[rs1] & imm
        elif op == _ORI:
            value = r[rs1] | imm
        elif op == _XORI:
            value = r[rs1] ^ imm
        elif op == _SHLI:
            value = r[rs1] << (imm & 63)
        elif op == _SHRI:
            value = (r[rs1] & _MASK64) >> (imm & 63)
        elif op == _SHL:
            value = r[rs1] << (r[rs2] & 63)
        elif op == _SHR:
            value = (r[rs1] & _MASK64) >> (r[rs2] & 63)
        elif op == _LUI:
            value = imm << 16
        elif op == _DIV:
            divisor = r[rs2]
            if divisor == 0:
                raise MachineFault("division by zero", pc)
            value = int(r[rs1] / divisor)  # truncate toward zero
        elif op == _JR:
            return r[rs1], None
        elif op == _CALLR:
            target = r[rs1]
            r[_LR] = next_pc
            return target, None
        elif op == _SYSCALL:
            return syscall_uop_step(machine, next_pc)
        elif op == _NOP:
            return next_pc, None
        elif op == _HALT:
            return None, halt_step_event()
        else:
            raise MachineFault("illegal opcode 0x%02x" % op, pc)

        if rd != _ZERO:
            if -9223372036854775808 <= value <= 9223372036854775807:
                r[rd] = value
            else:
                r[rd] = to_signed_word(value)
        return next_pc, None


def apply_module_event(machine: Machine, result) -> None:
    """Apply a dlopen/dlclose syscall result; shared by both executors.

    For dlopen the module's base address is written to ``rv``.
    """
    if result.dlopen is not None:
        machine.registers[regs.RV] = machine.dlopen(result.dlopen)
    elif result.dlclose is not None:
        machine.dlclose(result.dlclose)


def apply_thread_event(machine: Machine, result, next_pc):
    """Apply a thread-affecting syscall result; shared by both executors.

    Returns ``(resume_pc, process_exit_status)``: ``resume_pc`` is where
    execution continues (possibly in another thread, whose register file
    is now active), or None with the final status when the last thread
    exited.
    """
    if result.spawn is not None:
        entry, argument = result.spawn
        thread = machine.create_thread(entry, argument)
        hook = machine.os_state.nondet_hook
        if hook is not None:
            hook.on_spawn(thread.tid)
        machine.registers[regs.RV] = thread.tid
        return next_pc, None
    if result.yielded:
        return machine.schedule_next(next_pc), None
    if result.exited:
        resume = machine.schedule_next(None)
        if resume is None:
            return None, result.exit_status
        return resume, None
    return next_pc, None


@dataclass
class RunResult:
    """Outcome and accounting of one complete execution."""

    exit_status: int
    cycles: float
    instructions: int
    output: bytes
    syscall_counts: Dict[str, int]

    @property
    def exited_cleanly(self) -> bool:
        return True


class Interpreter:
    """Native execution: the baseline 'hardware' run of a process."""

    def __init__(
        self,
        machine: Machine,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        max_instructions: int = 200_000_000,
    ):
        self.machine = machine
        self.cost_model = cost_model
        self.max_instructions = max_instructions
        self.cycles = 0.0
        self.instructions = 0
        self.exit_status = 0
        # Instructions retired by the in-flight run() loop but not yet
        # folded into self.cycles (that fold happens once, after the
        # loop).  Without this term a mid-run SYS_CLOCK would read only
        # accumulated syscall cost — a spin loop of a million
        # instructions would see a clock of ~0.
        self._live_steps = 0
        native_inst = cost_model.native_inst
        machine.os_state.clock = (
            lambda: self.cycles + self._live_steps * native_inst
        )

    def run(self, entry: Optional[int] = None) -> RunResult:
        """Execute from ``entry`` (default: the process entry) to exit."""
        context = ExecutionContext(self.machine)
        fetch_uop = self.machine.fetch_uop
        step_uop = context.step_uop
        cost = self.cost_model
        budget = self.max_instructions
        steps = 0
        pc: Optional[int] = (
            entry if entry is not None else self.machine.process.entry_address
        )
        self._live_steps = 0
        while pc is not None:
            if steps >= budget:
                raise MachineFault("instruction budget exhausted", pc)
            uop = fetch_uop(pc)
            if uop[0] == _SYSCALL:
                # Publish the live retired-instruction count so a
                # SYS_CLOCK dispatched inside step_uop reads a clock
                # that advances with the instructions executed so far.
                self._live_steps = steps
            pc, event = step_uop(uop, pc)
            steps += 1
            if event is not None and event.syscall is not None:
                self.cycles += cost.native_syscall
                result = event.syscall
                if result.dlopen is not None or result.dlclose is not None:
                    apply_module_event(self.machine, result)
                elif result.exited or result.spawn is not None or result.yielded:
                    pc, status = apply_thread_event(self.machine, result, pc)
                    if status is not None:
                        self.exit_status = status
        self.instructions += steps
        self.cycles += steps * cost.native_inst
        self._live_steps = 0
        os_state = self.machine.os_state
        return RunResult(
            exit_status=self.exit_status,
            cycles=self.cycles,
            instructions=self.instructions,
            output=bytes(os_state.output),
            syscall_counts=dict(os_state.syscall_counts),
        )


def run_native(
    machine: Machine,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    max_instructions: int = 200_000_000,
) -> RunResult:
    """Convenience wrapper: interpret ``machine`` natively to completion."""
    return Interpreter(machine, cost_model, max_instructions).run()
